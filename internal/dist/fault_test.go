package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ppm/internal/apps/jacobi"
	"ppm/internal/core"
	"ppm/internal/faultinject"
)

// runMeshCfg is runMesh with per-rank Config customization and errors
// returned instead of failed: the fault tests *expect* ranks to die, and
// want to inspect exactly how.
func runMeshCfg(t *testing.T, nodes int, cfg func(rank int, c *Config), body func(rank int, eng *Engine) error) []error {
	t.Helper()
	dir := t.TempDir()
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := Config{Rank: rank, Nodes: nodes, RendezvousDir: dir}
			if cfg != nil {
				cfg(rank, &c)
			}
			eng, err := Connect(c)
			if err != nil {
				errs[rank] = err
				return
			}
			defer eng.Close()
			errs[rank] = body(rank, eng)
		}(r)
	}
	wg.Wait()
	return errs
}

// recoverAbort runs fn and converts the runtime's AbortError panic into
// the error the fault tests assert on.
func recoverAbort(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(core.AbortError); ok {
				err = ae.Err
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func mustPlan(t *testing.T, spec string, rank int) *faultinject.Plan {
	t.Helper()
	pl, err := faultinject.Parse(spec, rank, 0)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return pl
}

// TestHeartbeatDetectsSilentPeer injects a silent bidirectional partition
// (links stay open, frames vanish) and checks both ranks detect it within
// the heartbeat timeout — the failure TCP itself never reports — with an
// error naming the unresponsive rank.
func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	start := time.Now()
	errs := runMeshCfg(t, 2,
		func(rank int, c *Config) {
			c.HeartbeatInterval = 50 * time.Millisecond
			c.HeartbeatTimeout = 400 * time.Millisecond
			c.OpTimeout = 30 * time.Second // only the detector may fire
			c.DrainTimeout = 100 * time.Millisecond
			c.Faults = mustPlan(t, "partition=0|1", rank)
		},
		func(rank int, eng *Engine) error {
			// Block on a message the partition guarantees never arrives.
			return recoverAbort(func() { eng.Recv(1-rank, 7) })
		})
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("detection took %v — watchdog territory, detector did not fire", elapsed)
	}
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: no error despite full partition", rank)
		}
		if !strings.Contains(err.Error(), "unresponsive") {
			t.Errorf("rank %d error %q does not say the peer was unresponsive", rank, err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("rank %d", 1-rank)) {
			t.Errorf("rank %d error %q does not name rank %d", rank, err, 1-rank)
		}
		if !strings.Contains(err.Error(), "recv") {
			t.Errorf("rank %d error %q does not name the blocked operation", rank, err)
		}
	}
}

// TestFetchTimeout wedges the remote read server (rank 1 never installs
// one) and checks the per-operation deadline fires with an error naming
// the read and the owner — while heartbeats keep flowing, so only the op
// timeout can be the one that triggers.
func TestFetchTimeout(t *testing.T) {
	release := make(chan struct{})
	errs := runMeshCfg(t, 2,
		func(rank int, c *Config) {
			c.HeartbeatInterval = 50 * time.Millisecond
			c.HeartbeatTimeout = 30 * time.Second
			c.OpTimeout = 300 * time.Millisecond
			c.DrainTimeout = 100 * time.Millisecond
		},
		func(rank int, eng *Engine) error {
			if rank == 1 {
				// Never call SetReadServer: requests queue forever.
				<-release
				return nil
			}
			defer close(release)
			_, err := eng.Fetch(3, 1, 0, 8)
			return err
		})
	if errs[1] != nil {
		t.Fatalf("rank 1: %v", errs[1])
	}
	err := errs[0]
	if err == nil {
		t.Fatal("rank 0: Fetch returned without error despite a wedged owner")
	}
	for _, want := range []string{"timed out", "array 3", "rank 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("fetch timeout error %q lacks %q", err, want)
		}
	}
}

// TestCommitWaitTimeout holds back one rank's commit stream and checks
// the waiting rank's deadline names the phase and the missing rank.
func TestCommitWaitTimeout(t *testing.T) {
	release := make(chan struct{})
	errs := runMeshCfg(t, 2,
		func(rank int, c *Config) {
			c.HeartbeatInterval = 50 * time.Millisecond
			c.HeartbeatTimeout = 30 * time.Second
			c.OpTimeout = 300 * time.Millisecond
			c.DrainTimeout = 100 * time.Millisecond
		},
		func(rank int, eng *Engine) error {
			if rank == 1 {
				<-release // never commits phase 1
				return nil
			}
			defer close(release)
			_, err := eng.CommitExchange(1, make([][]byte, 2))
			return err
		})
	if errs[1] != nil {
		t.Fatalf("rank 1: %v", errs[1])
	}
	err := errs[0]
	if err == nil {
		t.Fatal("rank 0: commit wait returned without error")
	}
	for _, want := range []string{"commit of phase 1", "timed out", "[1]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("commit timeout error %q lacks %q", err, want)
		}
	}
}

// TestSeverFaultAborts hard-closes every connection incident to rank 0 at
// phase 1's commit and checks both sides fail fast with a transport-level
// error rather than hanging.
func TestSeverFaultAborts(t *testing.T) {
	errs := runMeshCfg(t, 2,
		func(rank int, c *Config) {
			c.HeartbeatInterval = 50 * time.Millisecond
			c.HeartbeatTimeout = 2 * time.Second
			c.OpTimeout = 5 * time.Second
			c.DrainTimeout = 100 * time.Millisecond
			c.Faults = mustPlan(t, "sever=0@phase:1", rank)
		},
		func(rank int, eng *Engine) error {
			_, err := eng.CommitExchange(1, make([][]byte, 2))
			return err
		})
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no rank failed despite a severed mesh")
	}
}

// TestRendezvousIgnoresStaleFiles seeds the rendezvous directory with
// leftovers from a "previous launch" — a stale-run-id file and a legacy
// untagged file, both pointing at a dead address — and checks a fresh
// fleet connects anyway instead of dialing ghosts.
func TestRendezvousIgnoresStaleFiles(t *testing.T) {
	dir := t.TempDir()
	deadAddr := "127.0.0.1:1" // reserved port: dialing it would fail fast and retry until timeout
	for r := 0; r < 2; r++ {
		stale := fmt.Sprintf("ppm-stale-run\n%s", deadAddr)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("node-%d.addr", r)), []byte(stale), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A legacy single-line file for a rank id outside the fleet must also
	// be inert.
	if err := os.WriteFile(filepath.Join(dir, "node-9.addr"), []byte(deadAddr), 0o644); err != nil {
		t.Fatal(err)
	}

	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			eng, err := Connect(Config{
				Rank: rank, Nodes: 2, RendezvousDir: dir,
				RunID:          "ppm-fresh-run",
				ConnectTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer eng.Close()
			// Prove the mesh is real: one round-trip.
			if rank == 0 {
				eng.Send(1, 5, []float64{1}, 8)
			} else {
				m := eng.Recv(0, 5)
				if m.Src != 0 {
					errs[rank] = fmt.Errorf("message from %d", m.Src)
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestRendezvousLegacyFilesAcceptedWithoutRunID checks the empty-RunID
// mode (hand-started fleets) still reads untagged address files.
func TestRendezvousLegacyFilesAcceptedWithoutRunID(t *testing.T) {
	if got, ok := readAddrFile(writeTemp(t, "127.0.0.1:4242"), ""); !ok || got != "127.0.0.1:4242" {
		t.Errorf("legacy file with empty run-id = (%q, %v), want accepted", got, ok)
	}
	if _, ok := readAddrFile(writeTemp(t, "127.0.0.1:4242"), "run-x"); ok {
		t.Error("legacy file accepted despite expected run-id")
	}
	if got, ok := readAddrFile(writeTemp(t, "run-x\n127.0.0.1:4242"), "run-x"); !ok || got != "127.0.0.1:4242" {
		t.Errorf("tagged file = (%q, %v), want accepted", got, ok)
	}
	if _, ok := readAddrFile(writeTemp(t, "run-y\n127.0.0.1:4242"), "run-x"); ok {
		t.Error("wrong-run-id file accepted")
	}
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "node-0.addr")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFrameFaultsPreserveResults runs a real app under heavy duplicate +
// delay injection. Dup and delay are *benign* faults for a correct
// protocol — commit streams are idempotently framed per phase and reads
// are request/response — so the run must still complete bit-identically.
func TestFrameFaultsPreserveResults(t *testing.T) {
	opt := distOpt(2)
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 5}
	want, wrep, err := jacobi.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}

	results := make([]NodeResult, 2)
	errs := runMeshCfg(t, 2,
		func(rank int, c *Config) {
			c.Faults = mustPlan(t, "seed=11; dup=0.2; delay=0.05:2ms", rank)
		},
		func(rank int, eng *Engine) error {
			results[rank] = *RunApp(eng, opt, AppSpec{App: "jacobi", Jacobi: prm})
			if results[rank].Err != "" {
				return fmt.Errorf("%s", results[rank].Err)
			}
			return nil
		})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	m, merr := Merge(AppSpec{App: "jacobi", Jacobi: prm}, results)
	if merr != nil {
		t.Fatal(merr)
	}
	sameF64(t, "u", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

// TestTruncationFaultFailsCleanly corrupts frames on the wire (re-framed
// truncation) and checks the fleet aborts with a decode error instead of
// hanging or panicking. drop=1 of everything would also do, but
// truncation additionally exercises the payload parsers on short input.
func TestTruncationFaultFailsCleanly(t *testing.T) {
	opt := distOpt(2)
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 5}
	errs := runMeshCfg(t, 2,
		func(rank int, c *Config) {
			c.HeartbeatInterval = 50 * time.Millisecond
			c.HeartbeatTimeout = 2 * time.Second
			c.OpTimeout = 5 * time.Second
			c.DrainTimeout = 100 * time.Millisecond
			if rank == 0 {
				c.Faults = mustPlan(t, "trunc=1", 0)
			}
		},
		func(rank int, eng *Engine) error {
			res := RunApp(eng, opt, AppSpec{App: "jacobi", Jacobi: prm})
			if res.Err != "" {
				return fmt.Errorf("%s", res.Err)
			}
			return nil
		})
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("universal frame truncation went unnoticed")
	}
}
