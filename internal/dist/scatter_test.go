package dist

import (
	"fmt"
	"math"
	"testing"
	"time"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/scatter"
	"ppm/internal/core"
	"ppm/internal/wire"
)

// The figure apps write owner-locally, so their remote commit streams
// are empty and all their wire traffic is fetches. The scatter app
// (internal/apps/scatter) is the opposite shape — a CG-transpose-style
// scatter-add whose VPs write short, near-monotone single-element Add
// runs into a neighbor node's partition — so it drives CommitData
// frames (and hence the commit codec) end to end. Every VP also reads
// the same remote block each phase, which is the fleet-wide
// read-coalescing pattern.

// runScatterSim runs the default scatter workload under the in-process
// simulator.
func runScatterSim(t *testing.T, nodes int) ([][]float64, *core.Report) {
	t.Helper()
	out, rep, err := scatter.RunPPM(distOpt(nodes), scatter.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

// runScatterMesh runs the same workload over a loopback mesh with a
// per-rank Config hook and returns each node's partition and full
// NodeStats (Wire counters included).
func runScatterMesh(t *testing.T, nodes int, mod func(rank int, cfg *Config)) ([][]float64, []core.NodeStats) {
	t.Helper()
	out := make([][]float64, nodes)
	stats := make([]core.NodeStats, nodes)
	runMeshWith(t, nodes, mod, func(rank int, eng *Engine) error {
		frag, rep, err := scatter.RunPPMOn(func(o core.Options, prog func(rt *core.Runtime)) (*core.Report, error) {
			return core.RunDist(o, eng, prog)
		}, distOpt(nodes), scatter.Params{})
		if err != nil {
			return err
		}
		out[rank] = frag[rank]
		stats[rank] = rep.PerNode[rank]
		return nil
	})
	return out, stats
}

// TestDistScatterCodecMatchesSimulator checks bit-identity of the
// scatter workload against the simulator under every wire
// configuration: raw commit streams, delta-compressed commit streams,
// and adaptive bundling with a flush stagger.
func TestDistScatterCodecMatchesSimulator(t *testing.T) {
	for _, nodes := range []int{2, 3} {
		want, wrep := runScatterSim(t, nodes)
		for _, tc := range []struct {
			name string
			mod  func(rank int, cfg *Config)
		}{
			{"raw", nil},
			{"delta", func(_ int, cfg *Config) { cfg.Codec = wire.CodecDelta }},
			{"adaptive-staggered", func(_ int, cfg *Config) {
				cfg.BundleAdaptive = true
				cfg.FlushStagger = 200 * time.Microsecond
			}},
		} {
			t.Run(fmt.Sprintf("nodes=%d/%s", nodes, tc.name), func(t *testing.T) {
				got, stats := runScatterMesh(t, nodes, tc.mod)
				for n := range want {
					sameF64(t, fmt.Sprintf("node %d partition", n), got[n], want[n])
				}
				samePerNode(t, stats, wrep.PerNode)
			})
		}
	}
}

// TestDistScatterWireCounters pins down the observable effects: the
// delta codec must actually shrink the commit stream, and concurrent
// identical remote reads must actually coalesce onto one wire fetch.
func TestDistScatterWireCounters(t *testing.T) {
	_, raw := runScatterMesh(t, 2, nil)
	_, delta := runScatterMesh(t, 2, func(_ int, cfg *Config) { cfg.Codec = wire.CodecDelta })

	var coalesced int64
	for rank, s := range raw {
		w := s.Wire
		if w.FramesOut == 0 || w.Flushes == 0 || w.BytesOnWire == 0 || w.ReadReqsSent == 0 {
			t.Errorf("rank %d: empty wire counters under load: %+v", rank, w)
		}
		if w.CommitBytesRaw == 0 {
			t.Errorf("rank %d: scatter workload produced no remote commit bytes", rank)
		}
		if w.CommitBytesEnc != w.CommitBytesRaw {
			t.Errorf("rank %d: raw codec reports transcoding: enc %d, raw %d",
				rank, w.CommitBytesEnc, w.CommitBytesRaw)
		}
		coalesced += w.ReadsCoalesced
	}
	// 6 VPs per rank fetch the same remote block every phase; all but
	// the first wait out the in-flight fetch. Requiring a single
	// coalesced read across 2 ranks x 4 phases keeps this robust.
	if coalesced == 0 {
		t.Error("no reads coalesced across 8 identical-range fan-in phases")
	}

	for rank, s := range delta {
		w := s.Wire
		if w.CommitBytesRaw == 0 {
			t.Fatalf("rank %d: no commit traffic under delta codec", rank)
		}
		if w.CommitBytesEnc >= w.CommitBytesRaw {
			t.Errorf("rank %d: delta codec did not shrink the commit stream: enc %d >= raw %d",
				rank, w.CommitBytesEnc, w.CommitBytesRaw)
		} else {
			t.Logf("rank %d commit stream: raw %d -> delta %d bytes (%.2fx)",
				rank, w.CommitBytesRaw, w.CommitBytesEnc,
				float64(w.CommitBytesRaw)/float64(w.CommitBytesEnc))
		}
	}
}

// TestDistScatterMixedCodecFleet runs a fleet where only rank 0 prefers
// the delta codec: each link negotiates independently, and the old-peer
// fallback to raw must not disturb the results.
func TestDistScatterMixedCodecFleet(t *testing.T) {
	want, wrep := runScatterSim(t, 3)
	got, stats := runScatterMesh(t, 3, func(rank int, cfg *Config) {
		if rank == 0 {
			cfg.Codec = wire.CodecDelta
		}
	})
	for n := range want {
		sameF64(t, fmt.Sprintf("node %d partition", n), got[n], want[n])
	}
	samePerNode(t, stats, wrep.PerNode)
}

// TestDistCGAdaptiveBundling reruns the strictest figure-app
// equivalence check (CG at 2 nodes) with the adaptive bundler and a
// flush stagger enabled, confirming the new writer path changes no
// result bits even on fetch-dominated traffic.
func TestDistCGAdaptiveBundling(t *testing.T) {
	opt := distOpt(2)
	prm := cg.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 6}
	want, wrep, err := cg.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]NodeResult, 2)
	runMeshWith(t, 2, func(_ int, cfg *Config) {
		cfg.BundleAdaptive = true
		cfg.FlushStagger = 100 * time.Microsecond
	}, func(rank int, eng *Engine) error {
		results[rank] = *RunApp(eng, opt, AppSpec{App: "cg", CG: prm})
		return nil
	})
	m, err := Merge(AppSpec{App: "cg", CG: prm}, results)
	if err != nil {
		t.Fatal(err)
	}
	if m.CG.Iters != want.Iters ||
		math.Float64bits(m.CG.Residual) != math.Float64bits(want.Residual) {
		t.Fatalf("cg under adaptive bundling: iters=%d res=%v, want iters=%d res=%v",
			m.CG.Iters, m.CG.Residual, want.Iters, want.Residual)
	}
	sameF64(t, "x", m.CG.X, want.X)
	samePerNode(t, m.PerNode, wrep.PerNode)
}
