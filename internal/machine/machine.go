// Package machine defines the performance model of the simulated parallel
// machine: a networked cluster of multicore nodes.
//
// The model is LogGP-flavored. A message of b bytes from one node to
// another costs the sender CPU overhead SendOverhead, occupies the
// sender's NIC for b/NetBandwidth, travels for NetLatency, and costs the
// receiver RecvOverhead. Messages between ranks on the same node bypass
// the NIC and use the (cheaper, higher-bandwidth) intra-node parameters —
// but they still pay per-message software overhead, which is the effect
// the paper highlights for MPI-on-multicore (its SmartMap footnote; see
// the SmartMap field).
//
// Computation is charged through effective per-core rates rather than
// peak: unstructured kernels are memory-bound, so the apps count flops
// and bytes moved and the model converts to seconds.
//
// The PPM runtime's software costs (per shared-variable access, per-VP
// scheduling, per-bundle handling) are parameters here too, because the
// paper's Figure 1 crossover is driven by exactly those overheads.
package machine

import (
	"fmt"
	"math"

	"ppm/internal/vtime"
)

// Machine holds the cost-model parameters for a cluster of multicore
// nodes. All times are seconds, rates are per-second.
type Machine struct {
	Name string

	// Node shape.
	CoresPerNode int

	// Compute: effective (not peak) per-core rates for the charge helpers.
	FlopRate float64 // sustained flop/s per core on unstructured kernels
	MemRate  float64 // sustained bytes/s per core for streaming access

	// Inter-node network (per message / per byte).
	NetLatency   float64 // end-to-end wire latency per message (s)
	NetBandwidth float64 // bytes/s through one node's NIC
	SendOverhead float64 // CPU time at sender per message (s)
	RecvOverhead float64 // CPU time at receiver per message (s)

	// Intra-node transport used by message passing between ranks that
	// share a node. Copies through shared memory: cheap but not free.
	IntraLatency   float64 // per-message latency within a node (s)
	IntraBandwidth float64 // bytes/s for intra-node copies
	// SmartMap models the Sandia Catamount single-copy optimization the
	// paper's footnote 1 discusses: when true, intra-node per-message
	// software overhead drops to the hardware copy cost only.
	SmartMap bool

	// PPM runtime software costs.
	SharedReadCost  float64 // CPU time per shared-variable element read
	SharedWriteCost float64 // CPU time per shared-variable element write
	VPStartCost     float64 // CPU time to schedule one virtual processor
	BundleOverhead  float64 // CPU time to assemble/disassemble one bundle
	PhaseFixedCost  float64 // fixed runtime cost per phase per node

	// Message-size envelope added to every message (headers, matching).
	HeaderBytes int
}

// Validate reports a descriptive error for non-physical parameters.
func (m *Machine) Validate() error {
	type check struct {
		name string
		v    float64
	}
	positive := []check{
		{"FlopRate", m.FlopRate},
		{"MemRate", m.MemRate},
		{"NetBandwidth", m.NetBandwidth},
		{"IntraBandwidth", m.IntraBandwidth},
	}
	for _, c := range positive {
		if c.v <= 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("machine %q: %s must be positive and finite, got %g", m.Name, c.name, c.v)
		}
	}
	nonneg := []check{
		{"NetLatency", m.NetLatency},
		{"SendOverhead", m.SendOverhead},
		{"RecvOverhead", m.RecvOverhead},
		{"IntraLatency", m.IntraLatency},
		{"SharedReadCost", m.SharedReadCost},
		{"SharedWriteCost", m.SharedWriteCost},
		{"VPStartCost", m.VPStartCost},
		{"BundleOverhead", m.BundleOverhead},
		{"PhaseFixedCost", m.PhaseFixedCost},
	}
	for _, c := range nonneg {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("machine %q: %s must be non-negative and finite, got %g", m.Name, c.name, c.v)
		}
	}
	if m.CoresPerNode <= 0 {
		return fmt.Errorf("machine %q: CoresPerNode must be positive, got %d", m.Name, m.CoresPerNode)
	}
	if m.HeaderBytes < 0 {
		return fmt.Errorf("machine %q: HeaderBytes must be non-negative, got %d", m.Name, m.HeaderBytes)
	}
	return nil
}

// FlopTime returns the compute time for n floating-point operations on a
// single core.
func (m *Machine) FlopTime(n int64) vtime.Duration {
	if n <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / m.FlopRate)
}

// MemTime returns the compute time for streaming n bytes through one core.
func (m *Machine) MemTime(n int64) vtime.Duration {
	if n <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / m.MemRate)
}

// WireTime returns the serialization time of b payload bytes (plus the
// header envelope) through a node NIC.
func (m *Machine) WireTime(b int) vtime.Duration {
	return vtime.Duration(float64(b+m.HeaderBytes) / m.NetBandwidth)
}

// IntraCopyTime returns the copy time of b payload bytes between ranks on
// the same node.
func (m *Machine) IntraCopyTime(b int) vtime.Duration {
	return vtime.Duration(float64(b+m.HeaderBytes) / m.IntraBandwidth)
}

// IntraSendOverhead returns the per-message CPU overhead of an intra-node
// message, honoring the SmartMap toggle.
func (m *Machine) IntraSendOverhead() vtime.Duration {
	if m.SmartMap {
		return vtime.Duration(m.SendOverhead / 10)
	}
	return vtime.Duration(m.SendOverhead)
}

// IntraRecvOverhead returns the per-message receive CPU overhead of an
// intra-node message, honoring the SmartMap toggle.
func (m *Machine) IntraRecvOverhead() vtime.Duration {
	if m.SmartMap {
		return vtime.Duration(m.RecvOverhead / 10)
	}
	return vtime.Duration(m.RecvOverhead)
}

// BarrierTime returns the modeled cost of a barrier over p participants
// once the last of them has arrived: a dissemination barrier performs
// ceil(log2 p) rounds of latency-bound exchanges.
func (m *Machine) BarrierTime(p int) vtime.Duration {
	if p <= 1 {
		return 0
	}
	rounds := 0
	for n := 1; n < p; n <<= 1 {
		rounds++
	}
	per := m.NetLatency + m.SendOverhead + m.RecvOverhead
	return vtime.Duration(float64(rounds) * per)
}

// Franklin returns parameters shaped after the paper's platform: the NERSC
// Cray XT4 "Franklin" (AMD Opteron 2.3 GHz quad-core nodes, SeaStar2
// interconnect). Rates are effective values for unstructured, memory-bound
// kernels, not peaks; see DESIGN.md for the calibration rationale.
func Franklin() *Machine {
	return &Machine{
		Name:         "franklin-xt4",
		CoresPerNode: 4,

		FlopRate: 450e6, // sustained flops/core on sparse kernels (~5% of 9.2 Gflop/s peak)
		MemRate:  1.8e9, // sustained stream bytes/s per core with 4 cores sharing the socket

		NetLatency:   6.5e-6,
		NetBandwidth: 1.6e9,
		SendOverhead: 1.2e-6,
		RecvOverhead: 1.2e-6,

		IntraLatency:   0.6e-6,
		IntraBandwidth: 3.2e9,
		SmartMap:       false, // paper footnote: not available on Franklin's Linux nodes

		SharedReadCost:  2.6e-8, // ~60 cycles of runtime bookkeeping per element access
		SharedWriteCost: 3.3e-8,
		VPStartCost:     2.0e-7,
		BundleOverhead:  2.5e-6,
		PhaseFixedCost:  4.0e-6,

		HeaderBytes: 64,
	}
}

// Generic returns a deliberately round-numbered machine useful in unit
// tests, where hand-computing expected virtual times matters more than
// realism.
func Generic() *Machine {
	return &Machine{
		Name:         "generic-test",
		CoresPerNode: 4,

		FlopRate: 1e9,
		MemRate:  1e10,

		NetLatency:   1e-6,
		NetBandwidth: 1e9,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,

		IntraLatency:   1e-7,
		IntraBandwidth: 1e10,

		SharedReadCost:  1e-8,
		SharedWriteCost: 1e-8,
		VPStartCost:     1e-7,
		BundleOverhead:  1e-6,
		PhaseFixedCost:  1e-6,

		HeaderBytes: 0,
	}
}

// Manycore returns a forward-looking machine with many more cores per
// node, used by the ablation benches to probe the paper's closing claim
// that PPM's advantage grows with core count.
func Manycore(cores int) *Machine {
	m := Franklin()
	m.Name = fmt.Sprintf("manycore-%d", cores)
	m.CoresPerNode = cores
	// More cores share the same socket bandwidth and NIC.
	m.MemRate = m.MemRate * 4 / float64(cores) * 2 // some headroom from newer memory
	return m
}
