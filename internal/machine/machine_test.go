package machine

import (
	"math"
	"testing"

	"ppm/internal/vtime"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range []*Machine{Franklin(), Generic(), Manycore(64)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	cases := []func(*Machine){
		func(m *Machine) { m.FlopRate = 0 },
		func(m *Machine) { m.MemRate = -1 },
		func(m *Machine) { m.NetBandwidth = math.NaN() },
		func(m *Machine) { m.IntraBandwidth = math.Inf(1) },
		func(m *Machine) { m.NetLatency = -1e-6 },
		func(m *Machine) { m.SendOverhead = math.NaN() },
		func(m *Machine) { m.SharedReadCost = -1 },
		func(m *Machine) { m.CoresPerNode = 0 },
		func(m *Machine) { m.HeaderBytes = -1 },
	}
	for i, mutate := range cases {
		m := Generic()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestFlopTime(t *testing.T) {
	m := Generic() // 1e9 flop/s
	if got := m.FlopTime(2e9); got != vtime.Duration(2) {
		t.Errorf("FlopTime(2e9) = %v, want 2s", got)
	}
	if got := m.FlopTime(0); got != 0 {
		t.Errorf("FlopTime(0) = %v, want 0", got)
	}
	if got := m.FlopTime(-5); got != 0 {
		t.Errorf("FlopTime(-5) = %v, want 0", got)
	}
}

func TestMemTime(t *testing.T) {
	m := Generic() // 1e10 B/s
	if got := m.MemTime(1e10); got != vtime.Duration(1) {
		t.Errorf("MemTime = %v, want 1s", got)
	}
}

func TestWireTimeIncludesHeader(t *testing.T) {
	m := Generic()
	m.HeaderBytes = 100
	// (900+100)/1e9 = 1us
	if got := m.WireTime(900); math.Abs(got.Seconds()-1e-6) > 1e-15 {
		t.Errorf("WireTime = %v, want 1us", got)
	}
}

func TestIntraCopyTime(t *testing.T) {
	m := Generic() // 1e10 B/s intra
	if got := m.IntraCopyTime(1e4); math.Abs(got.Seconds()-1e-6) > 1e-15 {
		t.Errorf("IntraCopyTime = %v, want 1us", got)
	}
}

func TestSmartMapReducesIntraOverhead(t *testing.T) {
	m := Generic()
	base := m.IntraSendOverhead() + m.IntraRecvOverhead()
	m.SmartMap = true
	fast := m.IntraSendOverhead() + m.IntraRecvOverhead()
	if fast >= base {
		t.Errorf("SmartMap did not reduce intra-node overhead: %v >= %v", fast, base)
	}
}

func TestBarrierTimeLogRounds(t *testing.T) {
	m := Generic()
	per := m.NetLatency + m.SendOverhead + m.RecvOverhead
	cases := []struct {
		p      int
		rounds int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, c := range cases {
		want := vtime.Duration(float64(c.rounds) * per)
		if got := m.BarrierTime(c.p); math.Abs(got.Seconds()-want.Seconds()) > 1e-18 {
			t.Errorf("BarrierTime(%d) = %v, want %v", c.p, got, want)
		}
	}
}

func TestBarrierTimeMonotone(t *testing.T) {
	m := Franklin()
	prev := vtime.Duration(0)
	for p := 1; p <= 4096; p *= 2 {
		bt := m.BarrierTime(p)
		if bt < prev {
			t.Errorf("BarrierTime(%d)=%v decreased from %v", p, bt, prev)
		}
		prev = bt
	}
}

func TestManycoreScalesCores(t *testing.T) {
	m := Manycore(128)
	if m.CoresPerNode != 128 {
		t.Errorf("CoresPerNode = %d, want 128", m.CoresPerNode)
	}
	if m.MemRate >= Franklin().MemRate {
		t.Error("per-core memory rate should shrink as cores share the socket")
	}
}
