package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/nbody"
	"ppm/internal/machine"
)

func tinySweep() SweepConfig {
	return SweepConfig{NodeCounts: []int{1, 2, 4}, Machine: machine.Franklin()}
}

func TestFigure1Tiny(t *testing.T) {
	s, err := Figure1CG(tinySweep(), cg.Params{NX: 8, NY: 8, NZ: 16, MaxIter: 4, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points: %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.PPMSec <= 0 || p.MPISec <= 0 {
			t.Errorf("nodes=%d: non-positive time (%v, %v)", p.Nodes, p.PPMSec, p.MPISec)
		}
	}
	for _, render := range []string{s.Table(), s.CSV(), s.Chart()} {
		if !strings.Contains(render, "4") {
			t.Error("render missing data")
		}
	}
}

func TestFigure2Tiny(t *testing.T) {
	s, err := Figure2Colloc(tinySweep(), colloc.Params{Levels: 4, M0: 8, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.PPMSec <= 0 || p.MPISec <= 0 {
			t.Errorf("nodes=%d: non-positive time", p.Nodes)
		}
	}
}

func TestFigure3Tiny(t *testing.T) {
	s, err := Figure3BarnesHut(tinySweep(), nbody.Params{N: 400, Steps: 1, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.PPMSec <= 0 || p.MPISec <= 0 {
			t.Errorf("nodes=%d: non-positive time", p.Nodes)
		}
		if p.Nodes > 1 && p.MPIBytes <= p.PPMBytes {
			t.Errorf("nodes=%d: replication bytes (%d) should exceed bundled bytes (%d)",
				p.Nodes, p.MPIBytes, p.PPMBytes)
		}
	}
}

func TestCrossoverNodes(t *testing.T) {
	s := &Series{Points: []Point{
		{Nodes: 1, PPMSec: 2, MPISec: 1},
		{Nodes: 2, PPMSec: 1.1, MPISec: 1},
		{Nodes: 4, PPMSec: 0.9, MPISec: 1},
	}}
	if got := s.CrossoverNodes(); got != 4 {
		t.Errorf("crossover = %d, want 4", got)
	}
	s.Points[2].PPMSec = 2
	if got := s.CrossoverNodes(); got != 0 {
		t.Errorf("crossover = %d, want 0", got)
	}
}

func TestCountGoLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	src := `// comment
package x

/* block
comment */
func F() int { // trailing comment counts as code
	return 1 /* inline */ + 2
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := CountGoLines(path)
	if err != nil {
		t.Fatal(err)
	}
	// package x; func F...; return...; closing brace = 4
	if n != 4 {
		t.Errorf("counted %d lines, want 4", n)
	}
}

func TestCountGoLinesMissing(t *testing.T) {
	if _, err := CountGoLines("/nonexistent/file.go"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTable1FromRepo(t *testing.T) {
	root, err := RepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table1CodeSizes(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows[:3] {
		if r.PPM <= 0 || r.MPI <= 0 {
			t.Errorf("%s: empty counts %+v", r.App, r)
		}
		// The paper's Table 1 point: PPM programs are substantially
		// smaller than the equivalent tuned message-passing programs.
		if float64(r.PPM) >= 0.95*float64(r.MPI) {
			t.Errorf("%s: PPM source (%d lines) not smaller than MPI source (%d lines)",
				r.App, r.PPM, r.MPI)
		}
	}
	out := Table1String(rows)
	if !strings.Contains(out, "Barnes-Hut") || !strings.Contains(out, "N/A") {
		t.Errorf("table rendering:\n%s", out)
	}
}

func TestRepoRootFailsAtFilesystemRoot(t *testing.T) {
	if _, err := RepoRoot("/tmp"); err == nil {
		// /tmp could theoretically contain go.mod; tolerate but check type
		t.Skip("unexpected go.mod above /tmp")
	}
}

func TestDefaultSweepShape(t *testing.T) {
	c := DefaultSweep()
	if len(c.NodeCounts) == 0 || c.CoresPerNode != 4 || c.Machine == nil {
		t.Errorf("default sweep: %+v", c)
	}
}
