package bench

import (
	"strings"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/nbody"
	"ppm/internal/machine"
)

// The reproduced quantity is the *shape* of each figure (EXPERIMENTS.md).
// These tests assert the shapes on the calibrated machine and then
// perturb the cost model by 2x in several directions to show the shapes
// are properties of the algorithms' communication structure, not of a
// knife-edge parameter choice.

func perturbations() map[string]*machine.Machine {
	out := map[string]*machine.Machine{"baseline": machine.Franklin()}
	mk := func(name string, mutate func(*machine.Machine)) {
		m := machine.Franklin()
		mutate(m)
		m.Name = name
		out[name] = m
	}
	mk("slow-net", func(m *machine.Machine) { m.NetLatency *= 2; m.NetBandwidth /= 2 })
	mk("fast-net", func(m *machine.Machine) { m.NetLatency /= 2; m.NetBandwidth *= 2 })
	mk("slow-cpu", func(m *machine.Machine) { m.FlopRate /= 2; m.MemRate /= 2 })
	mk("costly-overhead", func(m *machine.Machine) { m.SendOverhead *= 2; m.RecvOverhead *= 2 })
	return out
}

func shapeSweep() []int { return []int{1, 4, 16, 64} }

// Figure 1 shape: PPM starts well behind on one node and the PPM/MPI
// ratio falls monotonically-ish (never grows by more than 15%) as nodes
// are added.
func TestFigure1Shape(t *testing.T) {
	prm := cg.Params{NX: 16, NY: 16, NZ: 32, MaxIter: 8, Tol: 0}
	for name, m := range perturbations() {
		t.Run(name, func(t *testing.T) {
			s, err := Figure1CG(SweepConfig{NodeCounts: shapeSweep(), Machine: m}, prm)
			if err != nil {
				t.Fatal(err)
			}
			first := s.Points[0].PPMSec / s.Points[0].MPISec
			if first < 1.5 {
				t.Errorf("PPM should start well behind MPI on 1 node; ratio %v", first)
			}
			prev := first
			for _, p := range s.Points[1:] {
				ratio := p.PPMSec / p.MPISec
				if ratio > prev*1.15 {
					t.Errorf("ratio should shrink with nodes: %v -> %v at %d nodes", prev, ratio, p.Nodes)
				}
				prev = ratio
			}
			last := s.Points[len(s.Points)-1]
			if last.PPMSec/last.MPISec > first*0.5 {
				t.Errorf("PPM should close most of the gap: 1-node ratio %v, %d-node ratio %v",
					first, last.Nodes, last.PPMSec/last.MPISec)
			}
		})
	}
}

// Figure 2 shape: PPM at worst modestly behind at small scale, clearly
// ahead at 16+ nodes, and MPI's scaling collapses while PPM's does not.
func TestFigure2Shape(t *testing.T) {
	prm := colloc.Params{Levels: 6, M0: 8, Delta: 3}
	for name, m := range perturbations() {
		t.Run(name, func(t *testing.T) {
			s, err := Figure2Colloc(SweepConfig{NodeCounts: shapeSweep(), Machine: m}, prm)
			if err != nil {
				t.Fatal(err)
			}
			if r := s.Points[0].PPMSec / s.Points[0].MPISec; r > 2.2 {
				t.Errorf("1-node PPM/MPI ratio too large: %v", r)
			}
			for _, p := range s.Points[2:] { // 16 and 64 nodes
				if p.PPMSec >= p.MPISec {
					t.Errorf("PPM should win at %d nodes: %v vs %v", p.Nodes, p.PPMSec, p.MPISec)
				}
			}
			// PPM time at 16 nodes must be far below its 1-node time
			// (64 nodes saturates this deliberately small test workload);
			// MPI's 64-node time must not be (it stops scaling).
			if s.Points[2].PPMSec > s.Points[0].PPMSec/2.5 {
				t.Errorf("PPM did not scale: %v -> %v", s.Points[0].PPMSec, s.Points[2].PPMSec)
			}
			if s.Points[3].MPISec < s.Points[0].MPISec/3 {
				t.Errorf("MPI unexpectedly scaled cleanly: %v -> %v", s.Points[0].MPISec, s.Points[3].MPISec)
			}
		})
	}
}

// Figure 3 shape: PPM speeds up with nodes; the replication baseline's
// time never improves much and its traffic exceeds PPM's everywhere.
func TestFigure3Shape(t *testing.T) {
	prm := nbody.Params{N: 1200, Steps: 1, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 9}
	for name, m := range perturbations() {
		t.Run(name, func(t *testing.T) {
			s, err := Figure3BarnesHut(SweepConfig{NodeCounts: shapeSweep(), Machine: m}, prm)
			if err != nil {
				t.Fatal(err)
			}
			if s.Points[3].PPMSec > s.Points[0].PPMSec/2 {
				t.Errorf("PPM did not scale: %v -> %v", s.Points[0].PPMSec, s.Points[3].PPMSec)
			}
			if s.Points[3].MPISec < s.Points[0].MPISec {
				t.Errorf("replication baseline should not improve with nodes: %v -> %v",
					s.Points[0].MPISec, s.Points[3].MPISec)
			}
			for _, p := range s.Points[1:] {
				if p.MPIBytes <= p.PPMBytes {
					t.Errorf("replication bytes should dominate at %d nodes: %d vs %d",
						p.Nodes, p.MPIBytes, p.PPMBytes)
				}
				if p.PPMSec >= p.MPISec {
					t.Errorf("PPM should win at %d nodes: %v vs %v", p.Nodes, p.PPMSec, p.MPISec)
				}
			}
		})
	}
}

// Table 1 shape is asserted in bench_test.go (TestTable1FromRepo); here
// assert the summary helper stays consistent with the series.
func TestSeriesHelpersConsistent(t *testing.T) {
	s := &Series{Figure: "F", Name: "x", Points: []Point{
		{Nodes: 1, PPMSec: 2, MPISec: 1, PPMBytes: 10, MPIBytes: 20},
		{Nodes: 2, PPMSec: 0.5, MPISec: 1, PPMBytes: 30, MPIBytes: 40},
	}}
	table := s.Table()
	for _, want := range []string{"F: x", "2.000000", "0.500000"} {
		if !contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := s.CSV()
	if !contains(csv, "1,2,1,10,20") {
		t.Errorf("csv row malformed:\n%s", csv)
	}
	if s.CrossoverNodes() != 2 {
		t.Errorf("crossover = %d", s.CrossoverNodes())
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
