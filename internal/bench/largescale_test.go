package bench

import (
	"os"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/nbody"
)

// TestLargeScaleFigures runs the figure sweeps at sizes an order of
// magnitude closer to the paper's (minutes of host time). It is gated
// behind PPM_LARGE=1 so the default suite stays fast:
//
//	PPM_LARGE=1 go test ./internal/bench -run LargeScale -v -timeout 60m
func TestLargeScaleFigures(t *testing.T) {
	if os.Getenv("PPM_LARGE") == "" {
		t.Skip("set PPM_LARGE=1 to run the large-scale figure sweeps")
	}
	cfg := SweepConfig{NodeCounts: []int{1, 4, 16, 64}}

	s1, err := Figure1CG(cfg, cg.Params{NX: 48, NY: 48, NZ: 96, MaxIter: 25, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", s1.Table())
	if r := s1.Points[0].PPMSec / s1.Points[0].MPISec; r < 1.5 {
		t.Errorf("figure 1 large: 1-node ratio %v, expected PPM well behind", r)
	}
	last := s1.Points[len(s1.Points)-1]
	first := s1.Points[0]
	if last.PPMSec/last.MPISec > 0.6*(first.PPMSec/first.MPISec) {
		t.Errorf("figure 1 large: PPM did not close the gap")
	}

	s2, err := Figure2Colloc(cfg, colloc.Params{Levels: 9, M0: 16, Delta: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", s2.Table())
	if p := s2.Points[len(s2.Points)-1]; p.PPMSec >= p.MPISec {
		t.Errorf("figure 2 large: PPM should win at %d nodes", p.Nodes)
	}

	s3, err := Figure3BarnesHut(cfg, nbody.Params{N: 12000, Steps: 1, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", s3.Table())
	for _, p := range s3.Points[1:] {
		if p.PPMSec >= p.MPISec {
			t.Errorf("figure 3 large: PPM should win at %d nodes", p.Nodes)
		}
	}
}
