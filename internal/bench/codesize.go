package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CodeSize is one row of the paper's Table 1: source-line counts of an
// application's PPM program vs its message-passing program.
type CodeSize struct {
	App string
	PPM int
	MPI int // 0 means N/A (the paper has no MPI Barnes-Hut of its own)
}

// CountGoLines counts the non-blank, non-comment source lines of a Go
// file — the same convention the paper's Table 1 uses for C sources.
func CountGoLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		// Strip block comments opening on this line (no string-literal
		// awareness needed for this repo's style).
		for {
			open := strings.Index(line, "/*")
			if open < 0 {
				break
			}
			close := strings.Index(line[open:], "*/")
			if close < 0 {
				line = strings.TrimSpace(line[:open])
				inBlock = true
				break
			}
			line = strings.TrimSpace(line[:open] + line[open+close+2:])
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n, sc.Err()
}

// RepoRoot walks upward from dir until it finds go.mod.
func RepoRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("bench: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Table1CodeSizes regenerates the paper's Table 1 from this repository's
// own application sources: for each application, the PPM program file vs
// the message-passing program file. Shared problem-definition code
// (common.go) is excluded on both sides, matching the paper's remark that
// the computation codes have similar sizes and the difference lies in
// communication and synchronization code.
func Table1CodeSizes(repoRoot string) ([]CodeSize, error) {
	apps := []struct {
		name string
		dir  string
		mpi  bool
	}{
		{"Conjugate Gradient", "internal/apps/cg", true},
		{"Matrix Generation", "internal/apps/colloc", true},
		{"Barnes-Hut", "internal/apps/nbody", true},
		{"Binary Search (Sec. 5)", "internal/apps/search", false},
	}
	var out []CodeSize
	for _, a := range apps {
		row := CodeSize{App: a.name}
		var err error
		ppmFile := filepath.Join(repoRoot, a.dir, "ppm.go")
		if _, statErr := os.Stat(ppmFile); statErr != nil {
			// The search example's whole program is PPM.
			ppmFile = filepath.Join(repoRoot, a.dir, "search.go")
		}
		row.PPM, err = CountGoLines(ppmFile)
		if err != nil {
			return nil, err
		}
		if a.mpi {
			row.MPI, err = CountGoLines(filepath.Join(repoRoot, a.dir, "mpi.go"))
			if err != nil {
				return nil, err
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Table1String formats the code-size rows like the paper's Table 1.
func Table1String(rows []CodeSize) string {
	var b strings.Builder
	b.WriteString("Table 1: Code Size (number of lines)\n")
	fmt.Fprintf(&b, "%-24s  %12s  %12s\n", "Application", "PPM Program", "MPI Program")
	for _, r := range rows {
		mpi := "N/A"
		if r.MPI > 0 {
			mpi = fmt.Sprintf("%d", r.MPI)
		}
		fmt.Fprintf(&b, "%-24s  %12d  %12s\n", r.App, r.PPM, mpi)
	}
	return b.String()
}
