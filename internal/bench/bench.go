// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (Figures 1-3: application
// runtime vs node count for PPM and MPI; Table 1: code size) and formats
// the results as aligned tables, CSV, and ASCII charts.
//
// Absolute simulated seconds are not claimed to match the paper's Franklin
// wall-clock numbers; the reproduced quantity is the *shape*: who wins at
// which node count, and how the gap moves as nodes are added (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"math"
	"strings"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/core"
	"ppm/internal/machine"
)

// SweepConfig selects the cluster shapes of one figure sweep.
type SweepConfig struct {
	// NodeCounts lists the cluster sizes to run (the figures' x-axis).
	NodeCounts []int
	// CoresPerNode is the cores (and MPI ranks) per node; 0 uses the
	// machine's count (4 on Franklin, as in the paper).
	CoresPerNode int
	// Machine is the cost model; machine.Franklin() if nil.
	Machine *machine.Machine
}

func (c SweepConfig) fill() SweepConfig {
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if c.Machine == nil {
		c.Machine = machine.Franklin()
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = c.Machine.CoresPerNode
	}
	return c
}

// DefaultSweep returns the paper-shaped sweep: 1-64 Franklin nodes with 4
// cores each.
func DefaultSweep() SweepConfig { return SweepConfig{}.fill() }

// Point is one x-position of a figure: both implementations at one
// cluster size.
type Point struct {
	Nodes    int
	PPMSec   float64
	MPISec   float64
	PPMBytes int64 // modeled communication payload, PPM bundles
	MPIBytes int64 // modeled communication payload, MPI messages
	PPMMsgs  int64
	MPIMsgs  int64
}

// Series is one figure's data.
type Series struct {
	Figure string // e.g. "Figure 1"
	Name   string // e.g. "CG solver, 48x48x96 grid"
	Points []Point
}

// Table renders the series as an aligned text table with the PPM/MPI
// ratio column (ratio < 1 means PPM is faster).
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (simulated seconds, lower is better)\n", s.Figure, s.Name)
	fmt.Fprintf(&b, "%6s  %12s  %12s  %9s  %14s  %14s\n",
		"nodes", "PPM [s]", "MPI [s]", "PPM/MPI", "PPM comm [B]", "MPI comm [B]")
	for _, p := range s.Points {
		ratio := math.NaN()
		if p.MPISec > 0 {
			ratio = p.PPMSec / p.MPISec
		}
		fmt.Fprintf(&b, "%6d  %12.6f  %12.6f  %9.3f  %14d  %14d\n",
			p.Nodes, p.PPMSec, p.MPISec, ratio, p.PPMBytes, p.MPIBytes)
	}
	return b.String()
}

// CSV renders the series as CSV with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("nodes,ppm_sec,mpi_sec,ppm_bytes,mpi_bytes,ppm_msgs,mpi_msgs\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%d,%g,%g,%d,%d,%d,%d\n",
			p.Nodes, p.PPMSec, p.MPISec, p.PPMBytes, p.MPIBytes, p.PPMMsgs, p.MPIMsgs)
	}
	return b.String()
}

// Chart renders a horizontal-bar ASCII chart of both series.
func (s *Series) Chart() string {
	var b strings.Builder
	maxSec := 0.0
	for _, p := range s.Points {
		maxSec = math.Max(maxSec, math.Max(p.PPMSec, p.MPISec))
	}
	if maxSec <= 0 {
		return ""
	}
	const width = 46
	bar := func(v float64) string {
		n := int(math.Round(v / maxSec * width))
		if n < 1 && v > 0 {
			n = 1
		}
		return strings.Repeat("#", n)
	}
	fmt.Fprintf(&b, "%s: %s\n", s.Figure, s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%5d nodes  PPM |%-*s %.4gs\n", p.Nodes, width, bar(p.PPMSec), p.PPMSec)
		fmt.Fprintf(&b, "%5s        MPI |%-*s %.4gs\n", "", width, bar(p.MPISec), p.MPISec)
	}
	return b.String()
}

// CrossoverNodes returns the smallest node count at which PPM is at least
// as fast as MPI, or 0 if it never is.
func (s *Series) CrossoverNodes() int {
	for _, p := range s.Points {
		if p.PPMSec <= p.MPISec {
			return p.Nodes
		}
	}
	return 0
}

// Figure1CG regenerates the paper's Figure 1: CG solver runtime vs node
// count, PPM vs the tuned MPI implementation.
func Figure1CG(cfg SweepConfig, prm cg.Params) (*Series, error) {
	c := cfg.fill()
	s := &Series{
		Figure: "Figure 1",
		Name: fmt.Sprintf("CG solver, %dx%dx%d grid (%d rows), %d iterations",
			prm.NX, prm.NY, prm.NZ, prm.N(), prm.MaxIter),
	}
	for _, nodes := range c.NodeCounts {
		var pt Point
		pt.Nodes = nodes
		_, prep, err := cg.RunPPM(core.Options{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine,
		}, prm)
		if err != nil {
			return nil, fmt.Errorf("figure 1: PPM at %d nodes: %w", nodes, err)
		}
		pt.PPMSec = prep.Makespan().Seconds()
		pt.PPMBytes = prep.Totals.BytesOut + prep.Cluster.Totals.BytesSent
		pt.PPMMsgs = prep.Totals.BundlesOut + prep.Cluster.Totals.MsgsSent
		_, mrep, err := cg.RunMPI(cg.MPIOptions{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine,
		}, prm)
		if err != nil {
			return nil, fmt.Errorf("figure 1: MPI at %d nodes: %w", nodes, err)
		}
		pt.MPISec = mrep.Makespan.Seconds()
		pt.MPIBytes = mrep.Totals.BytesSent
		pt.MPIMsgs = mrep.Totals.MsgsSent
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// Figure2Colloc regenerates the paper's Figure 2: collocation sparse-
// matrix generation runtime vs node count.
func Figure2Colloc(cfg SweepConfig, prm colloc.Params) (*Series, error) {
	c := cfg.fill()
	s := &Series{
		Figure: "Figure 2",
		Name: fmt.Sprintf("collocation matrix generation, %d levels, n=%d",
			prm.Levels, prm.N()),
	}
	for _, nodes := range c.NodeCounts {
		var pt Point
		pt.Nodes = nodes
		_, prep, err := colloc.RunPPM(core.Options{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine,
		}, prm)
		if err != nil {
			return nil, fmt.Errorf("figure 2: PPM at %d nodes: %w", nodes, err)
		}
		pt.PPMSec = prep.Makespan().Seconds()
		pt.PPMBytes = prep.Totals.BytesOut + prep.Cluster.Totals.BytesSent
		pt.PPMMsgs = prep.Totals.BundlesOut + prep.Cluster.Totals.MsgsSent
		_, mrep, err := colloc.RunMPI(colloc.MPIOptions{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine,
		}, prm)
		if err != nil {
			return nil, fmt.Errorf("figure 2: MPI at %d nodes: %w", nodes, err)
		}
		pt.MPISec = mrep.Makespan.Seconds()
		pt.MPIBytes = mrep.Totals.BytesSent
		pt.MPIMsgs = mrep.Totals.MsgsSent
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// Figure3BarnesHut regenerates the paper's Figure 3: Barnes-Hut runtime
// vs node count, PPM (in-place bundled tree access) vs MPI (whole-tree
// replication).
func Figure3BarnesHut(cfg SweepConfig, prm nbody.Params) (*Series, error) {
	c := cfg.fill()
	s := &Series{
		Figure: "Figure 3",
		Name: fmt.Sprintf("Barnes-Hut, %d bodies, theta=%.2f, %d steps",
			prm.N, prm.Theta, prm.Steps),
	}
	for _, nodes := range c.NodeCounts {
		var pt Point
		pt.Nodes = nodes
		_, prep, err := nbody.RunPPM(core.Options{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine,
		}, prm)
		if err != nil {
			return nil, fmt.Errorf("figure 3: PPM at %d nodes: %w", nodes, err)
		}
		pt.PPMSec = prep.Makespan().Seconds()
		pt.PPMBytes = prep.Totals.BytesOut + prep.Cluster.Totals.BytesSent
		pt.PPMMsgs = prep.Totals.BundlesOut + prep.Cluster.Totals.MsgsSent
		_, mrep, err := nbody.RunMPI(nbody.MPIOptions{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine,
		}, prm)
		if err != nil {
			return nil, fmt.Errorf("figure 3: MPI at %d nodes: %w", nodes, err)
		}
		pt.MPISec = mrep.Makespan.Seconds()
		pt.MPIBytes = mrep.Totals.BytesSent
		pt.MPIMsgs = mrep.Totals.MsgsSent
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// FigureS1Jacobi regenerates the supplementary structured counterpoint
// (DESIGN.md experiment S1): Jacobi relaxation runtime vs node count.
func FigureS1Jacobi(cfg SweepConfig, prm jacobi.Params) (*Series, error) {
	c := cfg.fill()
	s := &Series{
		Figure: "Figure S1",
		Name: fmt.Sprintf("Jacobi relaxation (structured counterpoint), %dx%dx%d grid, %d sweeps",
			prm.NX, prm.NY, prm.NZ, prm.Sweeps),
	}
	for _, nodes := range c.NodeCounts {
		var pt Point
		pt.Nodes = nodes
		_, prep, err := jacobi.RunPPM(core.Options{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine,
		}, prm)
		if err != nil {
			return nil, fmt.Errorf("figure S1: PPM at %d nodes: %w", nodes, err)
		}
		pt.PPMSec = prep.Makespan().Seconds()
		pt.PPMBytes = prep.Totals.BytesOut + prep.Cluster.Totals.BytesSent
		pt.PPMMsgs = prep.Totals.BundlesOut + prep.Cluster.Totals.MsgsSent
		_, mrep, err := jacobi.RunMPI(jacobi.MPIOptions{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine,
		}, prm)
		if err != nil {
			return nil, fmt.Errorf("figure S1: MPI at %d nodes: %w", nodes, err)
		}
		pt.MPISec = mrep.Makespan.Seconds()
		pt.MPIBytes = mrep.Totals.BytesSent
		pt.MPIMsgs = mrep.Totals.MsgsSent
		s.Points = append(s.Points, pt)
	}
	return s, nil
}
