// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (Figures 1-3: application
// runtime vs node count for PPM and MPI; Table 1: code size) and formats
// the results as aligned tables, CSV, and ASCII charts.
//
// Absolute simulated seconds are not claimed to match the paper's Franklin
// wall-clock numbers; the reproduced quantity is the *shape*: who wins at
// which node count, and how the gap moves as nodes are added (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/core"
	"ppm/internal/machine"
)

// SweepConfig selects the cluster shapes of one figure sweep.
type SweepConfig struct {
	// NodeCounts lists the cluster sizes to run (the figures' x-axis).
	NodeCounts []int
	// CoresPerNode is the cores (and MPI ranks) per node; 0 uses the
	// machine's count (4 on Franklin, as in the paper).
	CoresPerNode int
	// Machine is the cost model; machine.Franklin() if nil. It is
	// shared read-only by every point of the sweep.
	Machine *machine.Machine

	// Parallel is the number of sweep points run concurrently on the
	// host: 0 uses GOMAXPROCS, 1 runs the sweep sequentially. Points
	// are independent — each run constructs its own Cluster, shared
	// arrays, pools, and RNG state — and results are assembled in
	// NodeCounts order regardless of completion order, so the Series
	// is bit-identical for every worker count.
	Parallel int
	// ParallelRun additionally runs each point's simulator under the
	// cluster's conservative parallel scheduler (see cluster.Config
	// .Parallel). Host-time optimization only; modeled results are
	// bit-identical either way.
	ParallelRun bool
	// Progress, if non-nil, receives one line per completed point, in
	// completion order (out of order when Parallel > 1), prefixed with
	// the point id. The callback is serialized by the harness.
	Progress func(line string)
}

func (c SweepConfig) fill() SweepConfig {
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if c.Machine == nil {
		c.Machine = machine.Franklin()
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = c.Machine.CoresPerNode
	}
	return c
}

// DefaultSweep returns the paper-shaped sweep: 1-64 Franklin nodes with 4
// cores each.
func DefaultSweep() SweepConfig { return SweepConfig{}.fill() }

// runPoints executes a figure's sweep on a bounded worker pool and
// appends the results to s.Points in NodeCounts order. Each point is
// two independent work units — the PPM run and the MPI run — which
// fill disjoint fields of the point, so the pool schedules 2*len
// (NodeCounts) jobs; splitting the halves shortens the critical path
// (the largest point's PPM run) that bounds the sweep's wall-clock.
//
// With one worker the halves run in the historical order (PPM then MPI,
// points in NodeCounts order, fail-fast: later work never runs after an
// error). With several workers every job runs and the reported error is
// the one the sequential order would have hit first — smallest point
// index, PPM half before MPI — so the error too is deterministic.
// Completed points stream through c.Progress as both halves finish.
func (c SweepConfig) runPoints(s *Series, ppm, mpi func(nodes int, pt *Point) error) error {
	total := len(c.NodeCounts)
	workers := c.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 2*total {
		workers = 2 * total
	}
	pts := make([]Point, total)
	for i, nodes := range c.NodeCounts {
		pts[i].Nodes = nodes
	}
	if workers <= 1 {
		done := 0
		for i, nodes := range c.NodeCounts {
			err := ppm(nodes, &pts[i])
			if err == nil {
				err = mpi(nodes, &pts[i])
			}
			done++
			c.emitProgress(s, nodes, pts[i], err, done, total)
			if err != nil {
				return err
			}
		}
		s.Points = append(s.Points, pts...)
		return nil
	}
	// A job is point index * 2 + half (0 = PPM, 1 = MPI). The halves
	// write disjoint fields of their point, so they need no lock; the
	// progress/error bookkeeping does.
	errs := make([]error, 2*total)
	left := make([]int, total) // halves still running per point
	for i := range left {
		left[i] = 2
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				i, nodes := j/2, c.NodeCounts[j/2]
				var err error
				if j%2 == 0 {
					err = ppm(nodes, &pts[i])
				} else {
					err = mpi(nodes, &pts[i])
				}
				mu.Lock()
				errs[j] = err
				left[i]--
				if left[i] == 0 {
					done++
					perr := errs[2*i]
					if perr == nil {
						perr = errs[2*i+1]
					}
					c.emitProgress(s, nodes, pts[i], perr, done, total)
				}
				mu.Unlock()
			}
		}()
	}
	// Dispatch biggest points first: host time grows with the proc
	// count, so on typical sweeps (1..64 nodes) the largest point is
	// the critical path. Starting it last would leave it running alone
	// after the small points drain; starting it first lets the small
	// points pack around it. Results are index-addressed, so dispatch
	// order never affects the assembled Series.
	order := make([]int, 2*total)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := c.NodeCounts[order[a]/2], c.NodeCounts[order[b]/2]
		if na != nb {
			return na > nb
		}
		return order[a] < order[b] // PPM (usually costlier) before MPI
	})
	for _, j := range order {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.Points = append(s.Points, pts...)
	return nil
}

// emitProgress formats and delivers one completed-point line. Callers
// serialize invocations.
func (c SweepConfig) emitProgress(s *Series, nodes int, pt Point, err error, done, total int) {
	if c.Progress == nil {
		return
	}
	id := fmt.Sprintf("[%s n=%d]", s.Figure, nodes)
	if err != nil {
		c.Progress(fmt.Sprintf("%s error: %v (%d/%d points)", id, err, done, total))
		return
	}
	c.Progress(fmt.Sprintf("%s PPM %.6fs MPI %.6fs (%d/%d points)", id, pt.PPMSec, pt.MPISec, done, total))
}

// Point is one x-position of a figure: both implementations at one
// cluster size.
type Point struct {
	Nodes    int
	PPMSec   float64
	MPISec   float64
	PPMBytes int64 // modeled communication payload, PPM bundles
	MPIBytes int64 // modeled communication payload, MPI messages
	PPMMsgs  int64
	MPIMsgs  int64
}

// Series is one figure's data.
type Series struct {
	Figure string // e.g. "Figure 1"
	Name   string // e.g. "CG solver, 48x48x96 grid"
	Points []Point
}

// Table renders the series as an aligned text table with the PPM/MPI
// ratio column (ratio < 1 means PPM is faster).
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (simulated seconds, lower is better)\n", s.Figure, s.Name)
	fmt.Fprintf(&b, "%6s  %12s  %12s  %9s  %14s  %14s\n",
		"nodes", "PPM [s]", "MPI [s]", "PPM/MPI", "PPM comm [B]", "MPI comm [B]")
	for _, p := range s.Points {
		ratio := math.NaN()
		if p.MPISec > 0 {
			ratio = p.PPMSec / p.MPISec
		}
		fmt.Fprintf(&b, "%6d  %12.6f  %12.6f  %9.3f  %14d  %14d\n",
			p.Nodes, p.PPMSec, p.MPISec, ratio, p.PPMBytes, p.MPIBytes)
	}
	return b.String()
}

// CSV renders the series as CSV with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("nodes,ppm_sec,mpi_sec,ppm_bytes,mpi_bytes,ppm_msgs,mpi_msgs\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%d,%g,%g,%d,%d,%d,%d\n",
			p.Nodes, p.PPMSec, p.MPISec, p.PPMBytes, p.MPIBytes, p.PPMMsgs, p.MPIMsgs)
	}
	return b.String()
}

// Chart renders a horizontal-bar ASCII chart of both series.
func (s *Series) Chart() string {
	var b strings.Builder
	maxSec := 0.0
	for _, p := range s.Points {
		maxSec = math.Max(maxSec, math.Max(p.PPMSec, p.MPISec))
	}
	if maxSec <= 0 {
		return ""
	}
	const width = 46
	bar := func(v float64) string {
		n := int(math.Round(v / maxSec * width))
		if n < 1 && v > 0 {
			n = 1
		}
		return strings.Repeat("#", n)
	}
	fmt.Fprintf(&b, "%s: %s\n", s.Figure, s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%5d nodes  PPM |%-*s %.4gs\n", p.Nodes, width, bar(p.PPMSec), p.PPMSec)
		fmt.Fprintf(&b, "%5s        MPI |%-*s %.4gs\n", "", width, bar(p.MPISec), p.MPISec)
	}
	return b.String()
}

// CrossoverNodes returns the smallest node count at which PPM is at least
// as fast as MPI, or 0 if it never is.
func (s *Series) CrossoverNodes() int {
	for _, p := range s.Points {
		if p.PPMSec <= p.MPISec {
			return p.Nodes
		}
	}
	return 0
}

// Figure1CG regenerates the paper's Figure 1: CG solver runtime vs node
// count, PPM vs the tuned MPI implementation.
func Figure1CG(cfg SweepConfig, prm cg.Params) (*Series, error) {
	c := cfg.fill()
	s := &Series{
		Figure: "Figure 1",
		Name: fmt.Sprintf("CG solver, %dx%dx%d grid (%d rows), %d iterations",
			prm.NX, prm.NY, prm.NZ, prm.N(), prm.MaxIter),
	}
	err := c.runPoints(s, func(nodes int, pt *Point) error {
		_, prep, err := cg.RunPPM(core.Options{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine, Parallel: c.ParallelRun,
		}, prm)
		if err != nil {
			return fmt.Errorf("figure 1: PPM at %d nodes: %w", nodes, err)
		}
		pt.PPMSec = prep.Makespan().Seconds()
		pt.PPMBytes = prep.Totals.BytesOut + prep.Cluster.Totals.BytesSent
		pt.PPMMsgs = prep.Totals.BundlesOut + prep.Cluster.Totals.MsgsSent
		return nil
	}, func(nodes int, pt *Point) error {
		_, mrep, err := cg.RunMPI(cg.MPIOptions{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine, Parallel: c.ParallelRun,
		}, prm)
		if err != nil {
			return fmt.Errorf("figure 1: MPI at %d nodes: %w", nodes, err)
		}
		pt.MPISec = mrep.Makespan.Seconds()
		pt.MPIBytes = mrep.Totals.BytesSent
		pt.MPIMsgs = mrep.Totals.MsgsSent
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Figure2Colloc regenerates the paper's Figure 2: collocation sparse-
// matrix generation runtime vs node count.
func Figure2Colloc(cfg SweepConfig, prm colloc.Params) (*Series, error) {
	c := cfg.fill()
	s := &Series{
		Figure: "Figure 2",
		Name: fmt.Sprintf("collocation matrix generation, %d levels, n=%d",
			prm.Levels, prm.N()),
	}
	err := c.runPoints(s, func(nodes int, pt *Point) error {
		_, prep, err := colloc.RunPPM(core.Options{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine, Parallel: c.ParallelRun,
		}, prm)
		if err != nil {
			return fmt.Errorf("figure 2: PPM at %d nodes: %w", nodes, err)
		}
		pt.PPMSec = prep.Makespan().Seconds()
		pt.PPMBytes = prep.Totals.BytesOut + prep.Cluster.Totals.BytesSent
		pt.PPMMsgs = prep.Totals.BundlesOut + prep.Cluster.Totals.MsgsSent
		return nil
	}, func(nodes int, pt *Point) error {
		_, mrep, err := colloc.RunMPI(colloc.MPIOptions{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine, Parallel: c.ParallelRun,
		}, prm)
		if err != nil {
			return fmt.Errorf("figure 2: MPI at %d nodes: %w", nodes, err)
		}
		pt.MPISec = mrep.Makespan.Seconds()
		pt.MPIBytes = mrep.Totals.BytesSent
		pt.MPIMsgs = mrep.Totals.MsgsSent
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Figure3BarnesHut regenerates the paper's Figure 3: Barnes-Hut runtime
// vs node count, PPM (in-place bundled tree access) vs MPI (whole-tree
// replication).
func Figure3BarnesHut(cfg SweepConfig, prm nbody.Params) (*Series, error) {
	c := cfg.fill()
	s := &Series{
		Figure: "Figure 3",
		Name: fmt.Sprintf("Barnes-Hut, %d bodies, theta=%.2f, %d steps",
			prm.N, prm.Theta, prm.Steps),
	}
	err := c.runPoints(s, func(nodes int, pt *Point) error {
		_, prep, err := nbody.RunPPM(core.Options{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine, Parallel: c.ParallelRun,
		}, prm)
		if err != nil {
			return fmt.Errorf("figure 3: PPM at %d nodes: %w", nodes, err)
		}
		pt.PPMSec = prep.Makespan().Seconds()
		pt.PPMBytes = prep.Totals.BytesOut + prep.Cluster.Totals.BytesSent
		pt.PPMMsgs = prep.Totals.BundlesOut + prep.Cluster.Totals.MsgsSent
		return nil
	}, func(nodes int, pt *Point) error {
		_, mrep, err := nbody.RunMPI(nbody.MPIOptions{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine, Parallel: c.ParallelRun,
		}, prm)
		if err != nil {
			return fmt.Errorf("figure 3: MPI at %d nodes: %w", nodes, err)
		}
		pt.MPISec = mrep.Makespan.Seconds()
		pt.MPIBytes = mrep.Totals.BytesSent
		pt.MPIMsgs = mrep.Totals.MsgsSent
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// FigureS1Jacobi regenerates the supplementary structured counterpoint
// (DESIGN.md experiment S1): Jacobi relaxation runtime vs node count.
func FigureS1Jacobi(cfg SweepConfig, prm jacobi.Params) (*Series, error) {
	c := cfg.fill()
	s := &Series{
		Figure: "Figure S1",
		Name: fmt.Sprintf("Jacobi relaxation (structured counterpoint), %dx%dx%d grid, %d sweeps",
			prm.NX, prm.NY, prm.NZ, prm.Sweeps),
	}
	err := c.runPoints(s, func(nodes int, pt *Point) error {
		_, prep, err := jacobi.RunPPM(core.Options{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine, Parallel: c.ParallelRun,
		}, prm)
		if err != nil {
			return fmt.Errorf("figure S1: PPM at %d nodes: %w", nodes, err)
		}
		pt.PPMSec = prep.Makespan().Seconds()
		pt.PPMBytes = prep.Totals.BytesOut + prep.Cluster.Totals.BytesSent
		pt.PPMMsgs = prep.Totals.BundlesOut + prep.Cluster.Totals.MsgsSent
		return nil
	}, func(nodes int, pt *Point) error {
		_, mrep, err := jacobi.RunMPI(jacobi.MPIOptions{
			Nodes: nodes, CoresPerNode: c.CoresPerNode, Machine: c.Machine, Parallel: c.ParallelRun,
		}, prm)
		if err != nil {
			return fmt.Errorf("figure S1: MPI at %d nodes: %w", nodes, err)
		}
		pt.MPISec = mrep.Makespan.Seconds()
		pt.MPIBytes = mrep.Totals.BytesSent
		pt.MPIMsgs = mrep.Totals.MsgsSent
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}
