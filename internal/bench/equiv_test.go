package bench

import (
	"encoding/json"
	"reflect"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/nbody"
	"ppm/internal/core"
)

// Small paper-shaped workloads: big enough to exercise every phase kind,
// small enough that six runs per figure stay fast.
var (
	equivCG     = cg.Params{NX: 10, NY: 10, NZ: 20, MaxIter: 4, Tol: 0}
	equivColloc = colloc.Params{Levels: 4, M0: 6, Delta: 3}
	equivNbody  = nbody.Params{N: 260, Steps: 2, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42}
)

// equivNodeCounts are the two cluster sizes the acceptance criteria
// require the sequential/parallel comparison to cover.
var equivNodeCounts = []int{2, 4}

// jsonBytes marshals a report for the byte-level comparison; the JSON
// form catches float formatting or field drift that DeepEqual alone
// could mask behind NaN semantics.
func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// checkRunEquivalence runs one figure's PPM program at one node count
// under the sequential and the parallel in-run scheduler and requires
// bit-identical reports.
func checkRunEquivalence(t *testing.T, name string, run func(opt core.Options) (*core.Report, error), nodes int) {
	t.Helper()
	opt := core.Options{Nodes: nodes, CoresPerNode: 2}
	seq, err := run(opt)
	if err != nil {
		t.Fatalf("%s n=%d sequential: %v", name, nodes, err)
	}
	opt.Parallel = true
	par, err := run(opt)
	if err != nil {
		t.Fatalf("%s n=%d parallel: %v", name, nodes, err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("%s n=%d: reports differ between schedulers:\nseq: %v\npar: %v", name, nodes, seq, par)
	}
	if sb, pb := jsonBytes(t, seq), jsonBytes(t, par); string(sb) != string(pb) {
		t.Errorf("%s n=%d: report JSON differs between schedulers:\n%s\n%s", name, nodes, sb, pb)
	}
}

func TestFigure1RunEquivalence(t *testing.T) {
	for _, n := range equivNodeCounts {
		checkRunEquivalence(t, "figure1/cg", func(opt core.Options) (*core.Report, error) {
			_, rep, err := cg.RunPPM(opt, equivCG)
			return rep, err
		}, n)
	}
}

func TestFigure2RunEquivalence(t *testing.T) {
	for _, n := range equivNodeCounts {
		checkRunEquivalence(t, "figure2/colloc", func(opt core.Options) (*core.Report, error) {
			_, rep, err := colloc.RunPPM(opt, equivColloc)
			return rep, err
		}, n)
	}
}

func TestFigure3RunEquivalence(t *testing.T) {
	for _, n := range equivNodeCounts {
		checkRunEquivalence(t, "figure3/nbody", func(opt core.Options) (*core.Report, error) {
			_, rep, err := nbody.RunPPM(opt, equivNbody)
			return rep, err
		}, n)
	}
}

// TestSweepWorkerCountEquivalence checks the other determinism axis: the
// assembled Series must be bit-identical whether the sweep runs on one
// worker or many, with or without the parallel in-run scheduler.
func TestSweepWorkerCountEquivalence(t *testing.T) {
	base := SweepConfig{NodeCounts: equivNodeCounts, CoresPerNode: 2}
	variants := []SweepConfig{
		{NodeCounts: base.NodeCounts, CoresPerNode: 2, Parallel: 1},
		{NodeCounts: base.NodeCounts, CoresPerNode: 2, Parallel: 4},
		{NodeCounts: base.NodeCounts, CoresPerNode: 2, Parallel: 4, ParallelRun: true},
	}
	var ref *Series
	for i, cfg := range variants {
		s, err := Figure1CG(cfg, equivCG)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if ref == nil {
			ref = s
			continue
		}
		if !reflect.DeepEqual(ref, s) {
			t.Errorf("variant %d series differs:\nref: %+v\ngot: %+v", i, ref, s)
		}
		if rb, sb := jsonBytes(t, ref), jsonBytes(t, s); string(rb) != string(sb) {
			t.Errorf("variant %d series JSON differs", i)
		}
	}
}

// TestSweepProgressAndErrorDeterminism checks that a failing point
// yields the same (smallest-index) error for any worker count, and that
// progress lines carry the point id.
func TestSweepProgressAndErrorDeterminism(t *testing.T) {
	bad := cg.Params{NX: 0, NY: 0, NZ: 0, MaxIter: 1} // invalid: every point fails
	var refErr string
	for _, workers := range []int{1, 3} {
		var lines []string
		cfg := SweepConfig{
			NodeCounts:   []int{1, 2, 4},
			CoresPerNode: 2,
			Parallel:     workers,
			Progress:     func(line string) { lines = append(lines, line) },
		}
		_, err := Figure1CG(cfg, bad)
		if err == nil {
			t.Fatalf("workers=%d: expected error for invalid params", workers)
		}
		if refErr == "" {
			refErr = err.Error()
		} else if err.Error() != refErr {
			t.Errorf("workers=%d: error differs: %q vs %q", workers, err.Error(), refErr)
		}
		if len(lines) == 0 {
			t.Fatalf("workers=%d: no progress lines", workers)
		}
		for _, l := range lines {
			if !reflect.DeepEqual(l[:9], "[Figure 1") {
				t.Errorf("workers=%d: progress line missing point id: %q", workers, l)
			}
		}
	}
}
