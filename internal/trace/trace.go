// Package trace turns the cluster's structured observer events into
// communication summaries and per-rank activity timelines — the kind of
// post-mortem view a performance engineer wants after a simulated run.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ppm/internal/cluster"
	"ppm/internal/vtime"
)

// Collector accumulates observer events. Install it with Observer() and
// inspect it after the run completes. Events arrive in deterministic
// schedule order from a single goroutine at a time, so no locking is
// needed for the simulator's use.
type Collector struct {
	events []cluster.Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Observer returns the callback to place in cluster.Config.Observer.
func (c *Collector) Observer() func(cluster.Event) {
	return func(ev cluster.Event) { c.events = append(c.events, ev) }
}

// Len returns the number of collected events.
func (c *Collector) Len() int { return len(c.events) }

// Events returns the collected events in arrival order.
func (c *Collector) Events() []cluster.Event { return c.events }

// RankSummary aggregates one rank's communication activity.
type RankSummary struct {
	Rank      int
	Sends     int
	Recvs     int
	SentBytes int64
	RecvBytes int64
	Barriers  int
	ExitTime  vtime.Time
}

// PairTraffic is the message volume between an ordered rank pair.
type PairTraffic struct {
	Src, Dst int
	Msgs     int
	Bytes    int64
}

// Summary is the digest of a whole run's communication.
type Summary struct {
	Ranks    []RankSummary
	Pairs    []PairTraffic // sorted by bytes, descending
	Makespan vtime.Time
}

// Summarize digests the collected events.
func (c *Collector) Summarize() *Summary {
	maxRank := -1
	for _, ev := range c.events {
		if ev.Rank > maxRank {
			maxRank = ev.Rank
		}
	}
	s := &Summary{Ranks: make([]RankSummary, maxRank+1)}
	for i := range s.Ranks {
		s.Ranks[i].Rank = i
	}
	pairs := make(map[[2]int]*PairTraffic)
	for _, ev := range c.events {
		r := &s.Ranks[ev.Rank]
		switch ev.Kind {
		case cluster.EvSend:
			r.Sends++
			r.SentBytes += int64(ev.Bytes)
			key := [2]int{ev.Rank, ev.Peer}
			pt := pairs[key]
			if pt == nil {
				pt = &PairTraffic{Src: ev.Rank, Dst: ev.Peer}
				pairs[key] = pt
			}
			pt.Msgs++
			pt.Bytes += int64(ev.Bytes)
		case cluster.EvRecv:
			r.Recvs++
			r.RecvBytes += int64(ev.Bytes)
		case cluster.EvBarrier:
			r.Barriers++
		case cluster.EvExit:
			r.ExitTime = ev.Time
		}
		if ev.Time.After(s.Makespan) {
			s.Makespan = ev.Time
		}
	}
	for _, pt := range pairs {
		s.Pairs = append(s.Pairs, *pt)
	}
	sort.Slice(s.Pairs, func(i, j int) bool {
		if s.Pairs[i].Bytes != s.Pairs[j].Bytes {
			return s.Pairs[i].Bytes > s.Pairs[j].Bytes
		}
		if s.Pairs[i].Src != s.Pairs[j].Src {
			return s.Pairs[i].Src < s.Pairs[j].Src
		}
		return s.Pairs[i].Dst < s.Pairs[j].Dst
	})
	return s
}

// String renders the summary as an aligned report: per-rank rows plus the
// heaviest communication pairs.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "communication summary (makespan %v)\n", s.Makespan)
	fmt.Fprintf(&b, "%5s  %8s  %8s  %12s  %12s  %9s\n",
		"rank", "sends", "recvs", "sent [B]", "recvd [B]", "barriers")
	for _, r := range s.Ranks {
		fmt.Fprintf(&b, "%5d  %8d  %8d  %12d  %12d  %9d\n",
			r.Rank, r.Sends, r.Recvs, r.SentBytes, r.RecvBytes, r.Barriers)
	}
	n := len(s.Pairs)
	if n > 8 {
		n = 8
	}
	if n > 0 {
		b.WriteString("heaviest pairs:\n")
		for _, pt := range s.Pairs[:n] {
			fmt.Fprintf(&b, "  %3d -> %3d  %8d msgs  %12d bytes\n", pt.Src, pt.Dst, pt.Msgs, pt.Bytes)
		}
	}
	return b.String()
}

// Timeline renders a coarse per-rank activity strip: virtual time is cut
// into buckets columns wide; a bucket shows '#' when the rank sent or
// received in it, '|' when it hit a barrier, '.' otherwise, and ends at
// the rank's exit.
func (c *Collector) Timeline(columns int) string {
	if columns <= 0 {
		columns = 60
	}
	s := c.Summarize()
	if s.Makespan <= 0 || len(s.Ranks) == 0 {
		return "(no events)\n"
	}
	width := s.Makespan.Seconds() / float64(columns)
	rows := make([][]byte, len(s.Ranks))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", columns))
	}
	bucket := func(t vtime.Time) int {
		b := int(t.Seconds() / width)
		if b >= columns {
			b = columns - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}
	for _, ev := range c.events {
		row := rows[ev.Rank]
		switch ev.Kind {
		case cluster.EvSend, cluster.EvRecv:
			row[bucket(ev.Time)] = '#'
		case cluster.EvBarrier:
			if row[bucket(ev.Time)] != '#' {
				row[bucket(ev.Time)] = '|'
			}
		case cluster.EvExit:
			for i := bucket(ev.Time) + 1; i < columns; i++ {
				row[i] = ' '
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline (one column = %v)\n", vtime.Duration(width))
	for i, row := range rows {
		fmt.Fprintf(&b, "%4d |%s|\n", i, row)
	}
	return b.String()
}
