package trace

import (
	"strings"
	"testing"

	"ppm/internal/cluster"
	"ppm/internal/machine"
)

func collectRun(t *testing.T, procs, perNode int, prog cluster.Program) *Collector {
	t.Helper()
	col := NewCollector()
	cfg := cluster.Config{Procs: procs, ProcsPerNode: perNode, Machine: machine.Generic(), Observer: col.Observer()}
	if _, err := cluster.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
	return col
}

func pingPong(p *cluster.Proc) {
	partner := p.Rank() ^ 1
	for i := 0; i < 3; i++ {
		if p.Rank()%2 == 0 {
			p.Send(partner, i, nil, 100)
			p.Recv(partner, i)
		} else {
			p.Recv(partner, i)
			p.Send(partner, i, nil, 100)
		}
	}
	p.Barrier()
}

func TestCollectorCounts(t *testing.T) {
	col := collectRun(t, 4, 2, pingPong)
	s := col.Summarize()
	if len(s.Ranks) != 4 {
		t.Fatalf("ranks: %d", len(s.Ranks))
	}
	for _, r := range s.Ranks {
		if r.Sends != 3 || r.Recvs != 3 {
			t.Errorf("rank %d: %d sends, %d recvs", r.Rank, r.Sends, r.Recvs)
		}
		if r.SentBytes != 300 || r.RecvBytes != 300 {
			t.Errorf("rank %d bytes: %d/%d", r.Rank, r.SentBytes, r.RecvBytes)
		}
		if r.Barriers != 1 {
			t.Errorf("rank %d barriers: %d", r.Rank, r.Barriers)
		}
		if r.ExitTime <= 0 {
			t.Errorf("rank %d exit time missing", r.Rank)
		}
	}
	if s.Makespan <= 0 {
		t.Error("makespan missing")
	}
}

func TestPairTrafficSorted(t *testing.T) {
	col := collectRun(t, 3, 1, func(p *cluster.Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 0, nil, 1000)
			p.Send(2, 0, nil, 10)
		case 1:
			p.Recv(0, 0)
		case 2:
			p.Recv(0, 0)
		}
	})
	s := col.Summarize()
	if len(s.Pairs) != 2 {
		t.Fatalf("pairs: %d", len(s.Pairs))
	}
	if s.Pairs[0].Bytes < s.Pairs[1].Bytes {
		t.Error("pairs not sorted by bytes descending")
	}
	if s.Pairs[0].Src != 0 || s.Pairs[0].Dst != 1 {
		t.Errorf("heaviest pair %d->%d", s.Pairs[0].Src, s.Pairs[0].Dst)
	}
}

func TestSummaryRendering(t *testing.T) {
	col := collectRun(t, 2, 1, pingPong)
	out := col.Summarize().String()
	for _, want := range []string{"communication summary", "rank", "heaviest pairs", "0 ->   1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	col := collectRun(t, 2, 1, pingPong)
	tl := col.Timeline(40)
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) != 3 { // header + 2 ranks
		t.Fatalf("timeline lines: %d\n%s", len(lines), tl)
	}
	if !strings.Contains(tl, "#") {
		t.Errorf("timeline shows no activity:\n%s", tl)
	}
	// Default width fallback.
	if empty := NewCollector().Timeline(0); !strings.Contains(empty, "no events") {
		t.Errorf("empty timeline: %q", empty)
	}
}

func TestDeterministicEventOrder(t *testing.T) {
	run := func() []cluster.Event {
		col := collectRun(t, 4, 2, pingPong)
		return col.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
