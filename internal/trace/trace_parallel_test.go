package trace

import (
	"testing"

	"ppm/internal/cluster"
	"ppm/internal/machine"
	"ppm/internal/vtime"
)

// collectMode runs prog under the chosen scheduler with a collector
// attached and returns it.
func collectMode(t *testing.T, procs, perNode int, parallel bool, prog cluster.Program) *Collector {
	t.Helper()
	col := NewCollector()
	cfg := cluster.Config{
		Procs: procs, ProcsPerNode: perNode, Machine: machine.Generic(),
		Parallel: parallel, Observer: col.Observer(),
	}
	if _, err := cluster.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
	return col
}

// busyProg mixes the event sources the collector distinguishes — sends,
// receives (one wildcard), barriers, exits at different clocks — with
// enough rank-skewed compute that a racy parallel scheduler would
// reorder events.
func busyProg(p *cluster.Proc) {
	procs := p.Procs()
	for i := 0; i < 3; i++ {
		p.Charge(vtime.Duration(float64((p.Rank()+i)%4) * 1e-5))
		next := (p.Rank() + 1) % procs
		p.Send(next, i, nil, 64*(i+1))
		if i == 1 {
			p.Recv(cluster.AnySource, i)
		} else {
			p.Recv((p.Rank()+procs-1)%procs, i)
		}
		p.Barrier()
	}
}

// TestParallelSchedulerEventStream is the trace-level equivalence check:
// the collector must see the exact same event sequence — kinds, ranks,
// payloads, virtual times, order — whichever scheduler produced it, so
// timelines and per-rank summaries are byte-identical too.
func TestParallelSchedulerEventStream(t *testing.T) {
	seq := collectMode(t, 6, 2, false, busyProg)
	par := collectMode(t, 6, 2, true, busyProg)
	a, b := seq.Events(), par.Events()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: sequential %d, parallel %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: sequential %+v, parallel %+v", i, a[i], b[i])
		}
	}
	if s, p := seq.Summarize().String(), par.Summarize().String(); s != p {
		t.Errorf("summaries differ:\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
	if s, p := seq.Timeline(60), par.Timeline(60); s != p {
		t.Errorf("timelines differ:\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestParallelSchedulerSummaryCounts sanity-checks the per-rank numbers
// under the parallel scheduler alone (not merely that the two modes
// agree): every rank did 3 sends, 3 recvs, 3 barriers.
func TestParallelSchedulerSummaryCounts(t *testing.T) {
	col := collectMode(t, 4, 2, true, busyProg)
	s := col.Summarize()
	if len(s.Ranks) != 4 {
		t.Fatalf("ranks: %d", len(s.Ranks))
	}
	for _, r := range s.Ranks {
		if r.Sends != 3 || r.Recvs != 3 || r.Barriers != 3 {
			t.Errorf("rank %d: sends=%d recvs=%d barriers=%d, want 3/3/3",
				r.Rank, r.Sends, r.Recvs, r.Barriers)
		}
		if r.ExitTime <= 0 {
			t.Errorf("rank %d exit time missing", r.Rank)
		}
	}
	if s.Makespan <= 0 {
		t.Error("makespan missing")
	}
}
