// Package linalg provides the dense vector kernels the solvers are built
// from, with flop counters so the simulator can charge modeled time for
// exactly the arithmetic performed.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y and the flops performed.
func Dot(x, y []float64) (sum float64, flops int64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		sum += x[i] * y[i]
	}
	return sum, int64(2 * len(x))
}

// Axpy computes y += a*x and returns the flops performed.
func Axpy(a float64, x, y []float64) (flops int64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += a * x[i]
	}
	return int64(2 * len(x))
}

// Scale computes x *= a and returns the flops performed.
func Scale(a float64, x []float64) (flops int64) {
	for i := range x {
		x[i] *= a
	}
	return int64(len(x))
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Norm2 returns the Euclidean norm of x and the flops performed.
func Norm2(x []float64) (norm float64, flops int64) {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s), int64(2*len(x) + 1)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// MaxAbsDiff returns the largest |x[i]-y[i]| — a test helper for
// comparing solver outputs.
func MaxAbsDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: MaxAbsDiff length mismatch %d vs %d", len(x), len(y)))
	}
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}
