package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"ppm/internal/rng"
)

func TestDot(t *testing.T) {
	s, fl := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if s != 32 {
		t.Errorf("dot = %v", s)
	}
	if fl != 6 {
		t.Errorf("flops = %d", fl)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	fl := Axpy(2, []float64{1, 2, 3}, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Errorf("axpy = %v", y)
	}
	if fl != 6 {
		t.Errorf("flops = %d", fl)
	}
}

func TestScaleNorm(t *testing.T) {
	x := []float64{3, 4}
	Scale(2, x)
	n, _ := Norm2(x)
	if math.Abs(n-10) > 1e-12 {
		t.Errorf("norm = %v", n)
	}
}

func TestCopyFill(t *testing.T) {
	dst := make([]float64, 3)
	Copy(dst, []float64{7, 8, 9})
	if dst[2] != 9 {
		t.Error("copy failed")
	}
	Fill(dst, -1)
	if dst[0] != -1 || dst[2] != -1 {
		t.Error("fill failed")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 1}); d != 1 {
		t.Errorf("maxabsdiff = %v", d)
	}
}

func TestLengthMismatchesPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"dot":  func() { Dot([]float64{1}, []float64{1, 2}) },
		"axpy": func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		"copy": func() { Copy([]float64{1}, []float64{1, 2}) },
		"diff": func() { MaxAbsDiff([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: Cauchy–Schwarz and linearity of dot under axpy.
func TestDotProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rng.New(seed)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
			y[i] = r.Float64()*2 - 1
		}
		xy, _ := Dot(x, y)
		nx, _ := Norm2(x)
		ny, _ := Norm2(y)
		if math.Abs(xy) > nx*ny+1e-9 {
			return false
		}
		// dot(x, y + 2x) == dot(x,y) + 2*dot(x,x)
		y2 := append([]float64(nil), y...)
		Axpy(2, x, y2)
		lhs, _ := Dot(x, y2)
		xx, _ := Dot(x, x)
		return math.Abs(lhs-(xy+2*xx)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
