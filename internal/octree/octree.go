// Package octree implements the Barnes–Hut octree: construction over a
// set of bodies, center-of-mass summarization, a flat float64 encoding
// that can live inside PPM global shared arrays or travel through the
// message-passing layer, and force evaluation with the multipole
// acceptance criterion.
//
// The flat encoding is the package's interchange format: the PPM
// application traverses remote trees in place through bundled fine-
// grained reads, while the message-passing baseline replicates whole
// flattened trees (the approach the paper cites and criticizes). Both
// traverse the same bytes with the same Accel routine, so the physics is
// identical and only the communication pattern differs.
package octree

import (
	"fmt"
	"math"
)

// LeafCap is the maximum number of bodies a leaf holds before splitting.
const LeafCap = 4

// maxDepth bounds tree depth; beyond it leaves are allowed to overflow
// LeafCap (guards against coincident bodies).
const maxDepth = 48

// Slots is the number of float64 slots one node occupies in the flat
// encoding.
const Slots = 32

// Flat-encoding slot offsets within a node.
const (
	slotMass   = 0
	slotComX   = 1
	slotComY   = 2
	slotComZ   = 3
	slotHalf   = 4
	slotChild0 = 5  // 8 child node indices (or -1), as float64
	slotNBody  = 13 // number of inline leaf bodies
	slotBodies = 14 // LeafCap * (x, y, z, m)
)

// Body is a point mass.
type Body struct {
	X, Y, Z float64
	M       float64
}

type node struct {
	cx, cy, cz, half float64
	children         [8]int32 // -1 if absent; leaf iff all -1
	bodies           []int32
	mass             float64
	comX, comY, comZ float64
	leaf             bool
}

// Tree is a built Barnes–Hut octree over a body set.
type Tree struct {
	nodes  []node
	bodies []Body
}

// NumNodes returns the number of tree nodes.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumBodies returns the number of bodies in the tree.
func (t *Tree) NumBodies() int { return len(t.bodies) }

// Bounds returns a cube enclosing all bodies: center and half-width.
func Bounds(bodies []Body) (cx, cy, cz, half float64) {
	if len(bodies) == 0 {
		return 0, 0, 0, 1
	}
	minX, minY, minZ := math.Inf(1), math.Inf(1), math.Inf(1)
	maxX, maxY, maxZ := math.Inf(-1), math.Inf(-1), math.Inf(-1)
	for _, b := range bodies {
		minX, maxX = math.Min(minX, b.X), math.Max(maxX, b.X)
		minY, maxY = math.Min(minY, b.Y), math.Max(maxY, b.Y)
		minZ, maxZ = math.Min(minZ, b.Z), math.Max(maxZ, b.Z)
	}
	cx, cy, cz = (minX+maxX)/2, (minY+maxY)/2, (minZ+maxZ)/2
	half = math.Max(maxX-minX, math.Max(maxY-minY, maxZ-minZ))/2 + 1e-12
	half *= 1.0001
	return cx, cy, cz, half
}

// Build constructs the octree for bodies within the given bounding cube.
// Pass the output of Bounds, or a common global cube when several nodes
// build sub-trees that must align spatially.
func Build(bodies []Body, cx, cy, cz, half float64) *Tree {
	if half <= 0 {
		panic(fmt.Sprintf("octree: non-positive half-width %v", half))
	}
	t := &Tree{bodies: bodies}
	t.nodes = append(t.nodes, newNode(cx, cy, cz, half))
	for i := range bodies {
		t.insert(0, int32(i), 0)
	}
	t.summarize(0)
	return t
}

func newNode(cx, cy, cz, half float64) node {
	n := node{cx: cx, cy: cy, cz: cz, half: half, leaf: true}
	for i := range n.children {
		n.children[i] = -1
	}
	return n
}

func (t *Tree) insert(ni int, bi int32, depth int) {
	n := &t.nodes[ni]
	if n.leaf {
		if len(n.bodies) < LeafCap || depth >= maxDepth {
			n.bodies = append(n.bodies, bi)
			return
		}
		// Split: push existing bodies down, then retry.
		old := n.bodies
		n.bodies = nil
		n.leaf = false
		for _, ob := range old {
			t.insertChild(ni, ob, depth)
		}
		t.insertChild(ni, bi, depth)
		return
	}
	t.insertChild(ni, bi, depth)
}

func (t *Tree) insertChild(ni int, bi int32, depth int) {
	b := t.bodies[bi]
	n := &t.nodes[ni]
	oct := 0
	if b.X >= n.cx {
		oct |= 1
	}
	if b.Y >= n.cy {
		oct |= 2
	}
	if b.Z >= n.cz {
		oct |= 4
	}
	ci := n.children[oct]
	if ci < 0 {
		h := n.half / 2
		cx, cy, cz := n.cx-h, n.cy-h, n.cz-h
		if oct&1 != 0 {
			cx = n.cx + h
		}
		if oct&2 != 0 {
			cy = n.cy + h
		}
		if oct&4 != 0 {
			cz = n.cz + h
		}
		ci = int32(len(t.nodes))
		n.children[oct] = ci
		t.nodes = append(t.nodes, newNode(cx, cy, cz, h))
	}
	t.insert(int(ci), bi, depth+1)
}

// summarize computes mass and center of mass bottom-up.
func (t *Tree) summarize(ni int) (mass, mx, my, mz float64) {
	n := &t.nodes[ni]
	if n.leaf {
		for _, bi := range n.bodies {
			b := t.bodies[bi]
			mass += b.M
			mx += b.M * b.X
			my += b.M * b.Y
			mz += b.M * b.Z
		}
	} else {
		for _, ci := range n.children {
			if ci < 0 {
				continue
			}
			m, x, y, z := t.summarize(int(ci))
			mass += m
			mx += x
			my += y
			mz += z
		}
	}
	n.mass = mass
	if mass > 0 {
		n.comX, n.comY, n.comZ = mx/mass, my/mass, mz/mass
	} else {
		n.comX, n.comY, n.comZ = n.cx, n.cy, n.cz
	}
	return mass, mx, my, mz
}

// Flatten serializes the tree into the flat float64 encoding: node i
// occupies Slots values starting at i*Slots.
func (t *Tree) Flatten() []float64 {
	out := make([]float64, len(t.nodes)*Slots)
	for i := range t.nodes {
		n := &t.nodes[i]
		base := i * Slots
		out[base+slotMass] = n.mass
		out[base+slotComX] = n.comX
		out[base+slotComY] = n.comY
		out[base+slotComZ] = n.comZ
		out[base+slotHalf] = n.half
		for c := 0; c < 8; c++ {
			out[base+slotChild0+c] = float64(n.children[c])
		}
		nb := len(n.bodies)
		out[base+slotNBody] = float64(nb)
		for k, bi := range n.bodies {
			if k >= LeafCap && k < len(n.bodies) {
				// Overflow leaves (coincident bodies at maxDepth) cannot
				// be encoded inline; fold the extras into the last slot
				// as a combined point mass at the leaf COM.
				last := base + slotBodies + (LeafCap-1)*4
				b := t.bodies[bi]
				tm := out[last+3] + b.M
				if tm > 0 {
					out[last+0] = (out[last+0]*out[last+3] + b.X*b.M) / tm
					out[last+1] = (out[last+1]*out[last+3] + b.Y*b.M) / tm
					out[last+2] = (out[last+2]*out[last+3] + b.Z*b.M) / tm
				}
				out[last+3] = tm
				continue
			}
			s := base + slotBodies + k*4
			b := t.bodies[bi]
			out[s+0], out[s+1], out[s+2], out[s+3] = b.X, b.Y, b.Z, b.M
		}
		if nb > LeafCap {
			out[base+slotNBody] = float64(LeafCap)
		}
	}
	return out
}

// FlatNode is one decoded tree-node record of the flat encoding. Force
// evaluation works on records: a traversal fetches each visited node once
// as a unit, which is both faster on the host and the realistic transfer
// granularity for a runtime moving tree nodes between address spaces.
type FlatNode struct {
	Mass             float64
	ComX, ComY, ComZ float64
	Half             float64
	Child            [8]int32
	NBody            int32
	Bodies           [LeafCap * 4]float64 // x, y, z, m per inline body
}

// DecodeNode fills out from node i of the flat encoding starting at off,
// reading through at (an element accessor, e.g. a slice index or a PPM
// shared read).
func DecodeNode(at func(i int) float64, off, i int, out *FlatNode) {
	base := off + i*Slots
	out.Mass = at(base + slotMass)
	out.ComX = at(base + slotComX)
	out.ComY = at(base + slotComY)
	out.ComZ = at(base + slotComZ)
	out.Half = at(base + slotHalf)
	for c := 0; c < 8; c++ {
		out.Child[c] = int32(at(base + slotChild0 + c))
	}
	out.NBody = int32(at(base + slotNBody))
	for k := 0; k < int(out.NBody)*4; k++ {
		out.Bodies[k] = at(base + slotBodies + k)
	}
}

// DecodeNodeRuns fills out from node i of the flat encoding using a bulk
// reader: the header slots (mass, COM, half-width, children, body count)
// form one contiguous run and the inline leaf bodies a second, so a
// runtime with block access fetches a record in at most two range reads.
// The elements touched, and their order, are exactly DecodeNode's.
func DecodeNodeRuns(read func(lo, hi int, dst []float64), off, i int, out *FlatNode) {
	base := off + i*Slots
	var hdr [slotBodies]float64
	read(base, base+slotBodies, hdr[:])
	out.Mass = hdr[slotMass]
	out.ComX = hdr[slotComX]
	out.ComY = hdr[slotComY]
	out.ComZ = hdr[slotComZ]
	out.Half = hdr[slotHalf]
	for c := 0; c < 8; c++ {
		out.Child[c] = int32(hdr[slotChild0+c])
	}
	out.NBody = int32(hdr[slotNBody])
	if nb := int(out.NBody) * 4; nb > 0 {
		read(base+slotBodies, base+slotBodies+nb, out.Bodies[:nb])
	}
}

// Source provides decoded node records of one flattened tree. Node must
// fill out with record i; implementations may cache.
type Source interface {
	Node(i int, out *FlatNode)
}

// SliceSource reads records from a local flat buffer at a given offset.
type SliceSource struct {
	Flat []float64
	Off  int
}

// Node implements Source.
func (s SliceSource) Node(i int, out *FlatNode) {
	DecodeNode(func(j int) float64 { return s.Flat[j] }, s.Off, i, out)
}

// Accel accumulates the acceleration at point (px, py, pz) due to the
// tree provided by src, using opening angle theta and Plummer softening
// eps. It returns the acceleration components and the number of body/cell
// interactions evaluated (for flop accounting: roughly 20 flops each).
func Accel(src Source, px, py, pz, theta, eps float64) (ax, ay, az float64, interactions int64) {
	eps2 := eps * eps
	var stack [128]int32
	sp := 0
	stack[sp] = 0
	sp++
	var nd FlatNode
	for sp > 0 {
		sp--
		src.Node(int(stack[sp]), &nd)
		if nd.Mass == 0 {
			continue
		}
		dx, dy, dz := nd.ComX-px, nd.ComY-py, nd.ComZ-pz
		d2 := dx*dx + dy*dy + dz*dz
		size := 2 * nd.Half
		if size*size < theta*theta*d2 {
			// Cell is far enough: use its multipole (monopole) moment.
			inv := 1 / math.Sqrt(d2+eps2)
			f := nd.Mass * inv * inv * inv
			ax += f * dx
			ay += f * dy
			az += f * dz
			interactions++
			continue
		}
		isLeaf := true
		for c := 0; c < 8; c++ {
			if ci := nd.Child[c]; ci >= 0 {
				isLeaf = false
				if sp >= len(stack) {
					panic("octree: traversal stack overflow")
				}
				stack[sp] = ci
				sp++
			}
		}
		if isLeaf {
			for k := 0; k < int(nd.NBody); k++ {
				bx, by, bz, bm := nd.Bodies[k*4], nd.Bodies[k*4+1], nd.Bodies[k*4+2], nd.Bodies[k*4+3]
				if bm == 0 {
					continue
				}
				dx, dy, dz := bx-px, by-py, bz-pz
				d2 := dx*dx + dy*dy + dz*dz
				inv := 1 / math.Sqrt(d2+eps2)
				f := bm * inv * inv * inv
				ax += f * dx
				ay += f * dy
				az += f * dz
				interactions++
			}
		}
	}
	return ax, ay, az, interactions
}

// DirectAccel computes the exact O(n) acceleration at (px, py, pz) from
// all bodies (the O(n^2) reference when called per body).
func DirectAccel(bodies []Body, px, py, pz, eps float64) (ax, ay, az float64) {
	eps2 := eps * eps
	for _, b := range bodies {
		dx, dy, dz := b.X-px, b.Y-py, b.Z-pz
		d2 := dx*dx + dy*dy + dz*dz
		inv := 1 / math.Sqrt(d2+eps2)
		f := b.M * inv * inv * inv
		ax += f * dx
		ay += f * dy
		az += f * dz
	}
	return ax, ay, az
}
