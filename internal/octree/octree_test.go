package octree

import (
	"math"
	"testing"
	"testing/quick"

	"ppm/internal/rng"
)

func randomBodies(seed uint64, n int) []Body {
	r := rng.New(seed)
	bodies := make([]Body, n)
	for i := range bodies {
		bodies[i] = Body{
			X: r.Float64()*2 - 1,
			Y: r.Float64()*2 - 1,
			Z: r.Float64()*2 - 1,
			M: 0.5 + r.Float64(),
		}
	}
	return bodies
}

func buildOf(bodies []Body) *Tree {
	cx, cy, cz, h := Bounds(bodies)
	return Build(bodies, cx, cy, cz, h)
}

func TestBoundsEncloseAll(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		bodies := randomBodies(seed, n)
		cx, cy, cz, h := Bounds(bodies)
		for _, b := range bodies {
			if math.Abs(b.X-cx) > h || math.Abs(b.Y-cy) > h || math.Abs(b.Z-cz) > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMassConservation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		bodies := randomBodies(seed, n)
		tr := buildOf(bodies)
		var want float64
		for _, b := range bodies {
			want += b.M
		}
		got := tr.nodes[0].mass
		return math.Abs(got-want) < 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEveryBodyInExactlyOneLeaf(t *testing.T) {
	bodies := randomBodies(3, 500)
	tr := buildOf(bodies)
	seen := make([]int, len(bodies))
	for _, n := range tr.nodes {
		if !n.leaf {
			if len(n.bodies) != 0 {
				t.Fatal("internal node holds bodies")
			}
			continue
		}
		for _, bi := range n.bodies {
			seen[bi]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("body %d appears in %d leaves", i, c)
		}
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	bodies := randomBodies(9, 300)
	tr := buildOf(bodies)
	for _, n := range tr.nodes {
		if n.leaf && len(n.bodies) > LeafCap {
			t.Fatalf("leaf holds %d bodies (cap %d)", len(n.bodies), LeafCap)
		}
	}
}

func TestRootCOMMatchesDirect(t *testing.T) {
	bodies := randomBodies(17, 64)
	tr := buildOf(bodies)
	var m, x, y, z float64
	for _, b := range bodies {
		m += b.M
		x += b.M * b.X
		y += b.M * b.Y
		z += b.M * b.Z
	}
	root := tr.nodes[0]
	if math.Abs(root.comX-x/m) > 1e-9 || math.Abs(root.comY-y/m) > 1e-9 || math.Abs(root.comZ-z/m) > 1e-9 {
		t.Errorf("root COM (%v,%v,%v) vs direct (%v,%v,%v)",
			root.comX, root.comY, root.comZ, x/m, y/m, z/m)
	}
}

func TestCoincidentBodiesDoNotRecurseForever(t *testing.T) {
	bodies := make([]Body, 20)
	for i := range bodies {
		bodies[i] = Body{X: 0.5, Y: 0.5, Z: 0.5, M: 1}
	}
	tr := Build(bodies, 0, 0, 0, 1)
	if tr.NumBodies() != 20 {
		t.Fatal("bodies lost")
	}
	if math.Abs(tr.nodes[0].mass-20) > 1e-12 {
		t.Fatalf("mass %v", tr.nodes[0].mass)
	}
	// Flattened tree must preserve total mass through the overflow fold.
	flat := tr.Flatten()
	var inline float64
	for ni := 0; ni < tr.NumNodes(); ni++ {
		base := ni * Slots
		nb := int(flat[base+slotNBody])
		for k := 0; k < nb; k++ {
			inline += flat[base+slotBodies+k*4+3]
		}
	}
	if math.Abs(inline-20) > 1e-9 {
		t.Fatalf("inline leaf mass %v, want 20", inline)
	}
}

// theta = 0 never accepts a multipole, so tree traversal must equal the
// direct O(n^2) sum exactly (up to summation-order rounding).
func TestAccelThetaZeroMatchesDirect(t *testing.T) {
	bodies := randomBodies(23, 128)
	tr := buildOf(bodies)
	flat := SliceSource{Flat: tr.Flatten()}
	for i := 0; i < 16; i++ {
		b := bodies[i*7]
		ax, ay, az, _ := Accel(flat, b.X, b.Y, b.Z, 0, 0.05)
		dx, dy, dz := DirectAccel(bodies, b.X, b.Y, b.Z, 0.05)
		if math.Abs(ax-dx) > 1e-9 || math.Abs(ay-dy) > 1e-9 || math.Abs(az-dz) > 1e-9 {
			t.Fatalf("body %d: tree (%v,%v,%v) vs direct (%v,%v,%v)", i, ax, ay, az, dx, dy, dz)
		}
	}
}

// Moderate theta keeps relative error small and reduces interactions.
func TestAccelThetaTradeoff(t *testing.T) {
	bodies := randomBodies(31, 1000)
	tr := buildOf(bodies)
	flat := SliceSource{Flat: tr.Flatten()}
	var worstRel float64
	var exactInter, approxInter int64
	for i := 0; i < 50; i++ {
		b := bodies[i*19]
		ax, ay, az, ni := Accel(flat, b.X, b.Y, b.Z, 0.5, 0.05)
		approxInter += ni
		dx, dy, dz := DirectAccel(bodies, b.X, b.Y, b.Z, 0.05)
		_, _, _, ne := Accel(flat, b.X, b.Y, b.Z, 0, 0.05)
		exactInter += ne
		mag := math.Sqrt(dx*dx + dy*dy + dz*dz)
		err := math.Sqrt((ax-dx)*(ax-dx)+(ay-dy)*(ay-dy)+(az-dz)*(az-dz)) / (mag + 1e-30)
		if err > worstRel {
			worstRel = err
		}
	}
	if worstRel > 0.05 {
		t.Errorf("theta=0.5 worst relative error %v, want < 5%%", worstRel)
	}
	if approxInter*2 >= exactInter {
		t.Errorf("theta=0.5 should use far fewer interactions: %d vs %d", approxInter, exactInter)
	}
}

// The flat encoding must contain the same tree: traverse and compare
// against an identically built second tree.
func TestFlattenDeterministic(t *testing.T) {
	bodies := randomBodies(41, 256)
	a := buildOf(bodies).Flatten()
	b := buildOf(bodies).Flatten()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flat[%d]: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tr := Build(nil, 0, 0, 0, 1)
	if tr.NumNodes() != 1 {
		t.Fatal("empty tree shape")
	}
	ax, ay, az, n := Accel(SliceSource{Flat: tr.Flatten()}, 1, 1, 1, 0.5, 0.1)
	if ax != 0 || ay != 0 || az != 0 || n != 0 {
		t.Error("empty tree exerts force")
	}
	one := []Body{{X: 0.1, Y: 0.2, Z: 0.3, M: 2}}
	tr1 := buildOf(one)
	gx, gy, gz, _ := Accel(SliceSource{Flat: tr1.Flatten()}, 0.6, 0.2, 0.3, 0.5, 0)
	// Pull should point in -x from the probe toward the body.
	if gx >= 0 || math.Abs(gy) > 1e-12 || math.Abs(gz) > 1e-12 {
		t.Errorf("single-body pull wrong: (%v,%v,%v)", gx, gy, gz)
	}
	want := 2.0 / (0.5 * 0.5)
	if math.Abs(-gx-want) > 1e-9 {
		t.Errorf("magnitude %v, want %v", -gx, want)
	}
}

func TestBuildPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(nil, 0, 0, 0, -1)
}

func TestSubtreeOffsets(t *testing.T) {
	// Accel with a non-zero offset must see the same tree embedded at an
	// offset within a larger buffer (as PPM tree segments are).
	bodies := randomBodies(5, 100)
	tr := buildOf(bodies)
	flat := tr.Flatten()
	buf := make([]float64, 1000+len(flat))
	copy(buf[1000:], flat)
	b := bodies[3]
	ax1, ay1, az1, _ := Accel(SliceSource{Flat: flat}, b.X, b.Y, b.Z, 0.5, 0.05)
	ax2, ay2, az2, _ := Accel(SliceSource{Flat: buf, Off: 1000}, b.X, b.Y, b.Z, 0.5, 0.05)
	if ax1 != ax2 || ay1 != ay2 || az1 != az2 {
		t.Error("offset traversal differs")
	}
}
