package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseFullSpec(t *testing.T) {
	spec := "seed=7; drop=0.1; delay=0.2:5ms@phase:3; dup=0.05; trunc=0.01@phase:2; sever=1@phase:4; partition=0|1,2@phase:5; kill=2@phase:6"
	pl, err := Parse(spec, 0, 0)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if pl.seed != 7 {
		t.Errorf("seed = %d, want 7", pl.seed)
	}
	if len(pl.rules) != 4 {
		t.Fatalf("got %d frame rules, want 4", len(pl.rules))
	}
	if pl.rules[1].kind != ruleDelay || pl.rules[1].d != 5*time.Millisecond || pl.rules[1].fromPhase != 3 {
		t.Errorf("delay rule = %+v", pl.rules[1])
	}
	if got := pl.SeverNow(4); len(got) != 1 || got[0] != 1 {
		t.Errorf("SeverNow(4) = %v, want [1]", got)
	}
	// Rank 0 is on side A of the partition; ranks 1 and 2 are far.
	pl.SetPhase(5)
	if !pl.Blackholed(1) || !pl.Blackholed(2) {
		t.Error("ranks 1,2 should be blackholed for rank 0 at phase 5")
	}
	// Rank 0 is not the kill victim.
	if pl.KillNow(6) {
		t.Error("rank 0 must not be killed by kill=2")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"drop",              // no =
		"drop=1.5",          // probability out of range
		"drop=x",            // not a number
		"delay=0.5",         // missing duration
		"delay=0.5:-3ms",    // negative duration
		"drop=0.5@phase:-1", // negative phase
		"drop=0.5@after:3",  // bad suffix
		"sever=x",           // bad rank
		"partition=0,1",     // missing |
		"partition=|1",      // empty side
		"kill=-2",           // negative rank
		"seed=abc",          // bad seed
		"explode=1",         // unknown key
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 0, 0); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		} else if !strings.Contains(err.Error(), "faultinject:") {
			t.Errorf("Parse(%q) error %q lacks package prefix", spec, err)
		}
	}
}

func TestKillTargetsOnlyNamedRank(t *testing.T) {
	for rank := 0; rank < 3; rank++ {
		pl, err := Parse("kill=1@phase:5", rank, 0)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		want := rank == 1
		if got := pl.KillNow(5); got != want {
			t.Errorf("rank %d KillNow(5) = %v, want %v", rank, got, want)
		}
		if pl.KillNow(4) || pl.KillNow(6) {
			t.Errorf("rank %d kill fired at wrong phase", rank)
		}
	}
}

func TestOneShotsDisarmedOnRelaunch(t *testing.T) {
	// attempt > 0 means the supervisor relaunched the fleet; the fault
	// that killed attempt 0 must not fire again or recovery can't work.
	pl, err := Parse("kill=1@phase:5; sever=0@phase:2; partition=0|1@phase:3", 1, 1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if pl.KillNow(5) {
		t.Error("kill re-armed on attempt 1")
	}
	if got := pl.SeverNow(2); len(got) != 0 {
		t.Errorf("sever re-armed on attempt 1: %v", got)
	}
	pl.SetPhase(10)
	if pl.Blackholed(0) {
		t.Error("partition re-armed on attempt 1")
	}
}

func TestSeverOnVictimRankMeansAllPeers(t *testing.T) {
	pl, err := Parse("sever=2@phase:1", 2, 0)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := pl.SeverNow(1); len(got) != 1 || got[0] != -1 {
		t.Errorf("victim's SeverNow = %v, want [-1] (all peers)", got)
	}
}

func TestPartitionSidesAndBystanders(t *testing.T) {
	// Rank 2 is in neither set: it must keep talking to everyone.
	pl, err := Parse("partition=0|1", 2, 0)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pl.SetPhase(0)
	if pl.Blackholed(0) || pl.Blackholed(1) {
		t.Error("bystander rank 2 should not blackhole anyone")
	}
	// Before the arming phase, even partition members talk freely.
	pl0, _ := Parse("partition=0|1@phase:4", 0, 0)
	pl0.SetPhase(3)
	if pl0.Blackholed(1) {
		t.Error("partition fired before its arming phase")
	}
	pl0.SetPhase(4)
	if !pl0.Blackholed(1) {
		t.Error("partition did not fire at its arming phase")
	}
	if pl0.Blackholed(0) {
		t.Error("rank 0 blackholed itself")
	}
}

func TestFrameDecisionsDeterministic(t *testing.T) {
	draw := func() []FrameFault {
		pl, err := Parse("seed=42; drop=0.3; dup=0.2; delay=0.1:1ms", 1, 0)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		var out []FrameFault
		for i := 0; i < 200; i++ {
			out = append(out, pl.Frame(0, 2))
		}
		return out
	}
	a, b := draw(), draw()
	var drops int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: %+v != %+v — replay diverged", i, a[i], b[i])
		}
		if a[i].Drop {
			drops++
		}
	}
	// 200 draws at p=0.3: distribution sanity, not exactness.
	if drops < 20 || drops > 120 {
		t.Errorf("got %d drops of 200 at p=0.3 — rng stream looks broken", drops)
	}
}

func TestFrameStreamsIndependentPerPeer(t *testing.T) {
	pl, _ := Parse("seed=9; drop=0.5", 0, 0)
	pl2, _ := Parse("seed=9; drop=0.5", 0, 0)
	// Interleaving draws to different peers must not perturb either
	// peer's own stream.
	var to1 []FrameFault
	for i := 0; i < 50; i++ {
		to1 = append(to1, pl.Frame(1, 2))
		pl.Frame(2, 2)
	}
	for i := 0; i < 50; i++ {
		if got := pl2.Frame(1, 2); got != to1[i] {
			t.Fatalf("draw %d to peer 1 diverged when peer 2 traffic interleaved", i)
		}
	}
}

func TestFrameRespectsArmingPhase(t *testing.T) {
	pl, _ := Parse("drop=1@phase:5", 0, 0)
	pl.SetPhase(4)
	if f := pl.Frame(1, 2); f.Drop {
		t.Error("drop fired before arming phase")
	}
	pl.SetPhase(5)
	if f := pl.Frame(1, 2); !f.Drop {
		t.Error("drop=1 did not fire at arming phase")
	}
}

func TestFromEnvUnset(t *testing.T) {
	t.Setenv("PPM_FAULT", "")
	pl, err := FromEnv(3)
	if pl != nil || err != nil {
		t.Fatalf("FromEnv with no spec = (%v, %v), want (nil, nil)", pl, err)
	}
}

func TestFromEnvAttempt(t *testing.T) {
	t.Setenv("PPM_FAULT", "kill=0@phase:1")
	t.Setenv("PPM_FAULT_ATTEMPT", "2")
	pl, err := FromEnv(0)
	if err != nil {
		t.Fatalf("FromEnv: %v", err)
	}
	if pl.KillNow(1) {
		t.Error("kill armed despite PPM_FAULT_ATTEMPT=2")
	}
	t.Setenv("PPM_FAULT_ATTEMPT", "bogus")
	if _, err := FromEnv(0); err == nil {
		t.Error("bad PPM_FAULT_ATTEMPT accepted")
	}
}

func TestKillhostTargetsOnlyNamedProc(t *testing.T) {
	// killhost keys on the HOST PROCESS index, not the logical rank: a
	// rescaled fleet hosts several ranks per process, and the fault must
	// follow the process that "is" the dead machine.
	for proc := 0; proc < 3; proc++ {
		pl, err := ParseHost("killhost=1@phase:4", 0, proc, 0)
		if err != nil {
			t.Fatalf("ParseHost: %v", err)
		}
		want := proc == 1
		if got := pl.KillNow(4); got != want {
			t.Errorf("proc %d KillNow(4) = %v, want %v", proc, got, want)
		}
		if pl.KillNow(3) || pl.KillNow(5) {
			t.Errorf("proc %d killhost fired at wrong phase", proc)
		}
	}
}

func TestKillhostRearmsOnEveryAttempt(t *testing.T) {
	// Unlike kill (a one-shot crash the relaunch survives), killhost
	// models a permanently dead machine: every attempt that schedules a
	// process with the doomed index dies again, until the supervisor
	// rescales the fleet so no process carries that index.
	for attempt := 0; attempt < 3; attempt++ {
		pl, err := ParseHost("killhost=1@phase:4", 0, 1, attempt)
		if err != nil {
			t.Fatalf("ParseHost(attempt=%d): %v", attempt, err)
		}
		if !pl.KillNow(4) {
			t.Errorf("killhost disarmed on attempt %d; a dead host must stay dead", attempt)
		}
	}
}

func TestKillhostParseErrors(t *testing.T) {
	for _, spec := range []string{"killhost=-1", "killhost=x", "killhost="} {
		if _, err := ParseHost(spec, 0, 0, 0); err == nil {
			t.Errorf("ParseHost(%q) accepted a bad proc index", spec)
		}
	}
}

func TestKillStillKeysOnRankUnderHosting(t *testing.T) {
	// A rescaled process hosts rank 2 as proc 1; kill=2 must follow the
	// rank, killhost=1 the proc — the two addressing schemes coexist.
	pl, err := ParseHost("kill=2@phase:6", 2, 1, 0)
	if err != nil {
		t.Fatalf("ParseHost: %v", err)
	}
	if !pl.KillNow(6) {
		t.Error("kill=2 did not fire for rank 2 hosted on proc 1")
	}
	pl2, err := ParseHost("kill=1@phase:6", 2, 1, 0)
	if err != nil {
		t.Fatalf("ParseHost: %v", err)
	}
	if pl2.KillNow(6) {
		t.Error("kill=1 fired for rank 2 just because its proc index is 1")
	}
}
