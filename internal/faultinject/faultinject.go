// Package faultinject is the deterministic fault-injection harness of
// the distributed runtime. A Plan, parsed from the PPM_FAULT environment
// variable (or built programmatically), tells the wire/dist seams which
// faults to inject: probabilistic frame faults (drop, delay, duplicate,
// truncate) on the per-peer writer, silent mesh partitions, hard
// connection severs, and killing a rank at the Nth global-phase boundary.
//
// Every probabilistic decision draws from internal/rng streams derived
// from the spec's seed and the (rank, peer) pair, so a chaos run replays
// exactly: the same spec against the same program produces the same
// faults on the same frames.
//
// Frame faults act at the writer seam, after all payload encoding: a
// truncated CommitData frame under the delta wire codec mutilates the
// encoded stream, exactly like damage on a real link, and must surface
// as a decode/length error on the receiver — never a wrong answer.
//
// Spec grammar (items separated by ';', whitespace ignored):
//
//	seed=N                    rng seed for probabilistic faults (default 1)
//	drop=P[@phase:K]          drop each outgoing frame with probability P
//	delay=P:DUR[@phase:K]     stall the writer for DUR with probability P
//	dup=P[@phase:K]           send each frame twice with probability P
//	trunc=P[@phase:K]         truncate the frame payload with probability P
//	sever=R[@phase:K]         close every connection incident to rank R
//	partition=A|B[@phase:K]   silently blackhole all links between rank
//	                          sets A and B (comma-separated rank lists)
//	kill=R[@phase:K]          rank R exits (code KillExitCode) on entering
//	                          the commit of global phase K
//	killhost=J[@phase:K]      host process J exits (code KillExitCode) on
//	                          entering the commit of global phase K
//
// @phase:K arms the item from global phase K on (probabilistic items) or
// exactly at phase K (sever, kill, killhost); the default is 0, i.e.
// immediately. One-shot items (sever, partition, kill) arm only on launch
// attempt 0 (PPM_FAULT_ATTEMPT, set by the supervisor), so a relaunched
// fleet can actually recover from the fault that killed the first one.
// killhost is the exception: it arms on every attempt, modeling a host
// that is permanently dead — the fault only stops firing once the
// supervisor rescales the fleet below J+1 host processes, which is what
// the elastic-recovery tests exercise.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppm/internal/rng"
)

// KillExitCode is the exit status of a rank killed by a kill= item,
// distinguishable from ordinary run failures (1) and flag errors (2).
const KillExitCode = 37

// FrameFault is the verdict for one outgoing frame.
type FrameFault struct {
	Drop  bool
	Dup   bool
	Trunc bool
	Delay time.Duration
}

type frameRuleKind int

const (
	ruleDrop frameRuleKind = iota
	ruleDelay
	ruleDup
	ruleTrunc
)

type frameRule struct {
	kind      frameRuleKind
	p         float64
	d         time.Duration
	fromPhase int64
}

// Plan is one process's parsed fault schedule. The zero Plan injects
// nothing; a nil *Plan is the usual "no faults" configuration.
type Plan struct {
	rank    int
	proc    int // host process index (== rank under native 1:1 hosting)
	attempt int
	seed    uint64

	rules     []frameRule
	severs    map[int64][]int // phase -> peers to sever (-1 = all)
	partPhase int64           // -1: no partition
	blackhole map[int]bool    // peers silently cut from partPhase on
	killPhase int64           // -1: no kill

	phase atomic.Int64 // current global phase, set by the engine

	mu   sync.Mutex
	rngs map[int]*rng.RNG // per-peer decision streams
}

// FromEnv builds the Plan for this rank from PPM_FAULT and
// PPM_FAULT_ATTEMPT, assuming native hosting (the rank's host process
// index equals its rank). It returns (nil, nil) when PPM_FAULT is unset.
func FromEnv(rank int) (*Plan, error) {
	return FromEnvHost(rank, rank)
}

// FromEnvHost is FromEnv for a rank hosted inside host process proc (a
// rescaled fleet runs several ranks per process; killhost= items key on
// the process index, not the rank).
func FromEnvHost(rank, proc int) (*Plan, error) {
	spec := os.Getenv("PPM_FAULT")
	if spec == "" {
		return nil, nil
	}
	attempt := 0
	if a := os.Getenv("PPM_FAULT_ATTEMPT"); a != "" {
		n, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad PPM_FAULT_ATTEMPT %q: %v", a, err)
		}
		attempt = n
	}
	return ParseHost(spec, rank, proc, attempt)
}

// Parse builds the Plan one rank derives from spec on the given launch
// attempt, assuming native hosting (proc == rank).
func Parse(spec string, rank, attempt int) (*Plan, error) {
	return ParseHost(spec, rank, rank, attempt)
}

// ParseHost builds the Plan for a rank hosted inside host process proc.
func ParseHost(spec string, rank, proc, attempt int) (*Plan, error) {
	pl := &Plan{
		rank:      rank,
		proc:      proc,
		attempt:   attempt,
		seed:      1,
		severs:    make(map[int64][]int),
		partPhase: -1,
		killPhase: -1,
		rngs:      make(map[int]*rng.RNG),
	}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: item %q is not key=value", item)
		}
		val, phase, err := cutPhase(val)
		if err != nil {
			return nil, fmt.Errorf("faultinject: item %q: %v", item, err)
		}
		switch key {
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", val)
			}
			pl.seed = s
		case "drop", "dup", "trunc":
			p, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: item %q: %v", item, err)
			}
			kind := map[string]frameRuleKind{"drop": ruleDrop, "dup": ruleDup, "trunc": ruleTrunc}[key]
			pl.rules = append(pl.rules, frameRule{kind: kind, p: p, fromPhase: phase})
		case "delay":
			ps, ds, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faultinject: delay wants P:DUR, got %q", val)
			}
			p, err := parseProb(ps)
			if err != nil {
				return nil, fmt.Errorf("faultinject: item %q: %v", item, err)
			}
			d, err := time.ParseDuration(ds)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: bad delay duration %q", ds)
			}
			pl.rules = append(pl.rules, frameRule{kind: ruleDelay, p: p, d: d, fromPhase: phase})
		case "sever":
			r, err := strconv.Atoi(val)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("faultinject: bad sever rank %q", val)
			}
			if attempt == 0 {
				if rank == r {
					pl.severs[phase] = append(pl.severs[phase], -1) // all peers
				} else {
					pl.severs[phase] = append(pl.severs[phase], r)
				}
			}
		case "partition":
			a, b, ok := strings.Cut(val, "|")
			if !ok {
				return nil, fmt.Errorf("faultinject: partition wants A|B rank sets, got %q", val)
			}
			as, err := parseRanks(a)
			if err != nil {
				return nil, fmt.Errorf("faultinject: item %q: %v", item, err)
			}
			bs, err := parseRanks(b)
			if err != nil {
				return nil, fmt.Errorf("faultinject: item %q: %v", item, err)
			}
			if attempt == 0 {
				var far []int
				switch {
				case as[rank]:
					far = keys(bs)
				case bs[rank]:
					far = keys(as)
				}
				if len(far) > 0 {
					pl.partPhase = phase
					if pl.blackhole == nil {
						pl.blackhole = make(map[int]bool)
					}
					for _, r := range far {
						pl.blackhole[r] = true
					}
				}
			}
		case "kill":
			r, err := strconv.Atoi(val)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("faultinject: bad kill rank %q", val)
			}
			if attempt == 0 && rank == r {
				pl.killPhase = phase
			}
		case "killhost":
			j, err := strconv.Atoi(val)
			if err != nil || j < 0 {
				return nil, fmt.Errorf("faultinject: bad killhost proc %q", val)
			}
			// Armed on EVERY attempt: the host stays dead until the
			// supervisor stops scheduling a process with its index.
			if proc == j {
				pl.killPhase = phase
			}
		default:
			return nil, fmt.Errorf("faultinject: unknown item %q", key)
		}
	}
	return pl, nil
}

func cutPhase(val string) (string, int64, error) {
	base, suffix, ok := strings.Cut(val, "@")
	if !ok {
		return val, 0, nil
	}
	ks, ok := strings.CutPrefix(suffix, "phase:")
	if !ok {
		return "", 0, fmt.Errorf("bad suffix %q (want @phase:K)", suffix)
	}
	k, err := strconv.ParseInt(ks, 10, 64)
	if err != nil || k < 0 {
		return "", 0, fmt.Errorf("bad phase %q", ks)
	}
	return base, k, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q (want [0, 1])", s)
	}
	return p, nil
}

func parseRanks(s string) (map[int]bool, error) {
	out := make(map[int]bool)
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.Atoi(f)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad rank %q", f)
		}
		out[r] = true
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty rank set %q", s)
	}
	return out, nil
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SetPhase records the global phase whose commit the engine is entering;
// phase-armed items key off it.
func (pl *Plan) SetPhase(phase int64) { pl.phase.Store(phase) }

// KillNow reports whether this rank must die at the given phase boundary.
func (pl *Plan) KillNow(phase int64) bool {
	return pl.killPhase >= 0 && phase == pl.killPhase
}

// SeverNow returns the peers whose connections this rank must close at
// the given phase boundary; a single -1 entry means every peer.
func (pl *Plan) SeverNow(phase int64) []int { return pl.severs[phase] }

// Blackholed reports whether all traffic to dst is silently discarded
// (the partition fault: the link looks alive but carries nothing, which
// is exactly what the heartbeat detector exists to catch).
func (pl *Plan) Blackholed(dst int) bool {
	return pl.partPhase >= 0 && pl.blackhole[dst] && pl.phase.Load() >= pl.partPhase
}

// Frame decides the fate of one outgoing frame to dst. Decisions consume
// the (rank, dst) rng stream in frame order, so a replay with the same
// spec makes the same calls on the same frames.
func (pl *Plan) Frame(dst int, kind byte) FrameFault {
	if len(pl.rules) == 0 {
		return FrameFault{}
	}
	r := pl.rngFor(dst)
	phase := pl.phase.Load()
	var f FrameFault
	for i := range pl.rules {
		rule := &pl.rules[i]
		if phase < rule.fromPhase {
			continue
		}
		if r.Float64() >= rule.p {
			continue
		}
		switch rule.kind {
		case ruleDrop:
			f.Drop = true
		case ruleDelay:
			f.Delay += rule.d
		case ruleDup:
			f.Dup = true
		case ruleTrunc:
			f.Trunc = true
		}
	}
	return f
}

func (pl *Plan) rngFor(dst int) *rng.RNG {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	r := pl.rngs[dst]
	if r == nil {
		r = rng.New(pl.seed).Split(uint64(pl.rank)<<20 | uint64(dst+1))
		pl.rngs[dst] = r
	}
	return r
}
