package ppm_test

import (
	"encoding/json"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ppm/internal/apps/cg"
	"ppm/internal/bench"
)

// TestParallelBenchArtifact regenerates BENCH_parallel.json, the
// checked-in snapshot of the host wall-clock effect of the two
// parallelism layers on the full Figure 1 sweep (the paper's default
// 1..64-node, 4-core sweep at ppm-figures' workload size). Gated behind
// an environment variable so routine test runs stay fast:
//
//	BENCH_PARALLEL=1 go test -run TestParallelBenchArtifact -v .
//
// The speedup is a property of the host: with GOMAXPROCS=1 there is no
// host parallelism to harvest and the ratio is ~1x by construction; on
// a 4-core host the sweep pool alone clears 2x (the n=64 point is the
// critical path and is dispatched first — see SweepConfig.runPoints).
// The artifact therefore records the host shape next to the numbers.
// Whatever the worker count, the assembled Series must be bit-identical
// to the sequential one; the test fails otherwise.
func TestParallelBenchArtifact(t *testing.T) {
	if os.Getenv("BENCH_PARALLEL") == "" {
		t.Skip("set BENCH_PARALLEL=1 to regenerate BENCH_parallel.json")
	}
	prm := cg.Params{NX: 24, NY: 24, NZ: 48, MaxIter: 20, Tol: 0}
	workers := runtime.GOMAXPROCS(0)

	measure := func(parallel int, parallelRun bool) (float64, *bench.Series) {
		cfg := bench.DefaultSweep()
		cfg.Parallel = parallel
		cfg.ParallelRun = parallelRun
		best := 0.0
		var series *bench.Series
		for rep := 0; rep < 3; rep++ { // best of 3 damps host noise
			start := time.Now()
			s, err := bench.Figure1CG(cfg, prm)
			if err != nil {
				t.Fatal(err)
			}
			sec := time.Since(start).Seconds()
			if series == nil || sec < best {
				best, series = sec, s
			}
		}
		return best, series
	}

	seqSec, seqSeries := measure(1, false)
	parSec, parSeries := measure(workers, false)
	bothSec, bothSeries := measure(workers, true)

	for name, s := range map[string]*bench.Series{"parallel-sweep": parSeries, "parallel-both": bothSeries} {
		if !reflect.DeepEqual(seqSeries, s) {
			t.Errorf("%s series differs from sequential:\nseq: %+v\ngot: %+v", name, seqSeries, s)
		}
	}

	doc := struct {
		Note           string  `json:"note"`
		Go             string  `json:"go"`
		HostCPUs       int     `json:"host_cpus"`
		SweepWorkers   int     `json:"sweep_workers"`
		Points         int     `json:"points"`
		SequentialSec  float64 `json:"sequential_sec"`
		ParallelSec    float64 `json:"parallel_sweep_sec"`
		ParallelRunSec float64 `json:"parallel_sweep_and_run_sec"`
		Speedup        float64 `json:"speedup_sweep"`
		SpeedupBoth    float64 `json:"speedup_sweep_and_run"`
		Identical      bool    `json:"series_bit_identical"`
	}{
		Note: "Host wall-clock of the full Figure 1 CG sweep (nodes 1..64, 4 cores, 24x24x48 grid, " +
			"20 iterations; PPM and MPI per point), best of 3. sequential_sec runs points one at a " +
			"time; parallel_sweep_sec runs them on a GOMAXPROCS-worker pool; " +
			"parallel_sweep_and_run_sec additionally uses the in-run parallel scheduler. The modeled " +
			"Series is bit-identical in all modes (enforced here and in internal/bench/equiv_test.go). " +
			"Speedup scales with host_cpus: ~1x at 1 CPU, >=2x from 4 CPUs.",
		Go:             runtime.Version(),
		HostCPUs:       runtime.NumCPU(),
		SweepWorkers:   workers,
		Points:         len(seqSeries.Points),
		SequentialSec:  seqSec,
		ParallelSec:    parSec,
		ParallelRunSec: bothSec,
		Speedup:        seqSec / parSec,
		SpeedupBoth:    seqSec / bothSec,
		Identical:      reflect.DeepEqual(seqSeries, parSeries) && reflect.DeepEqual(seqSeries, bothSeries),
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cpus=%d workers=%d seq=%.2fs par=%.2fs both=%.2fs speedup=%.2fx/%.2fx",
		doc.HostCPUs, workers, seqSec, parSec, bothSec, doc.Speedup, doc.SpeedupBoth)
}
