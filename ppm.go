// Package ppm is a Go implementation of the Parallel Phase Model (PPM),
// the parallel programming model for clusters of manycore nodes proposed
// in "Parallel Phase Model: A Programming Model for High-end Parallel
// Machines with Manycores" (Brightwell, Heroux, Wen, Wu; SAND2009-2287 /
// ICPP 2009), together with the deterministic cluster simulator the
// reproduction runs on.
//
// # The model
//
// A PPM program is SPMD over the nodes of a cluster: Run invokes your
// program once per node with a Runtime handle. On a node, Runtime.Do(K,
// body) starts K virtual processors (the paper's PPM_do construct); VP
// bodies contain global and node phases:
//
//	rt.Do(K, func(vp *ppm.VP) {
//		vp.GlobalPhase(func() {
//			v := a.Read(vp, i) // sees the value at the phase's beginning
//			b.Write(vp, j, v)  // takes effect after the phase's end
//		})
//	})
//
// Shared variables come in two kinds, mirroring the paper's declarations:
// AllocGlobal creates one PPM_global_shared array distributed across the
// cluster's virtual shared memory, and AllocNode creates one
// PPM_node_shared instance per node. Within a phase every read observes
// the begin-of-phase value and every write commits at the implicit
// barrier that ends the phase, so there are no data races by
// construction. The runtime bundles fine-grained remote accesses into
// coarse packages, overlaps them with computation, and serves repeated
// reads from a node-level cache — the optimizations the paper's runtime
// performs — each of which can be disabled in Options for ablation.
//
// # The machine
//
// Programs execute on a simulated distributed-memory machine: all Go code
// really runs (results are real), while time is charged against a
// LogGP-style cost model (see Machine and Franklin). Reports carry the
// modeled makespan and traffic statistics. Runs are deterministic: the
// same program and options produce bit-identical results and times.
package ppm

import (
	"ppm/internal/cluster"
	"ppm/internal/core"
	"ppm/internal/machine"
	"ppm/internal/trace"
	"ppm/internal/vtime"
)

// Options configures one PPM run. See the field docs in internal/core.
type Options = core.Options

// Runtime is a node's handle to the run: system variables
// (NodeID/NodeCount/CoresPerNode), Do, node-level utilities.
type Runtime = core.Runtime

// VP is a virtual processor handle, valid inside a Do body.
type VP = core.VP

// Report summarizes a completed run: modeled makespan, per-node
// statistics, communication totals.
type Report = core.Report

// NodeStats aggregates one node's runtime activity.
type NodeStats = core.NodeStats

// WriteConflict is one strict-mode conflict: a shared element updated
// incompatibly by more than one VP within a single phase. Report.Conflicts
// lists every one detected during a StrictWrites run.
type WriteConflict = core.WriteConflict

// WriterRef identifies one VP involved in a WriteConflict.
type WriterRef = core.WriterRef

// Global is a globally shared array (the paper's PPM_global_shared),
// block-distributed over the cluster. Besides the scalar Read/Write/Add
// accessors it offers ReadBlock, WriteBlock and AddBlock for contiguous
// ranges — semantically identical to the element-wise loops (same
// modeled costs and traffic) but far cheaper in host time.
type Global[T Elem] = core.Global[T]

// Node is a node-shared array (the paper's PPM_node_shared): one
// independent instance per node. It offers the same block accessors as
// Global.
type Node[T Elem] = core.Node[T]

// Elem constrains shared-array element types.
type Elem = core.Elem

// ReduceOp selects the combining operation of the reduction utilities.
type ReduceOp = core.ReduceOp

// Reduction operations.
const (
	OpSum = core.OpSum
	OpMax = core.OpMax
	OpMin = core.OpMin
)

// Machine is the cluster cost model.
type Machine = machine.Machine

// Time is a point in simulated time (seconds).
type Time = vtime.Time

// Duration is a span of simulated time (seconds).
type Duration = vtime.Duration

// Run executes prog as an SPMD program on every node of a simulated
// cluster and returns the run report.
func Run(opt Options, prog func(rt *Runtime)) (*Report, error) {
	return core.Run(opt, prog)
}

// AllocGlobal allocates a globally shared array of n elements,
// block-distributed over the nodes. Collective: every node must call it
// in the same program order with the same name and size.
func AllocGlobal[T Elem](rt *Runtime, name string, n int) *Global[T] {
	return core.AllocGlobal[T](rt, name, n)
}

// AllocNode allocates a node-shared array of n elements on every node
// (one independent instance per node). Collective like AllocGlobal.
func AllocNode[T Elem](rt *Runtime, name string, n int) *Node[T] {
	return core.AllocNode[T](rt, name, n)
}

// ChunkRange splits n items into parts blocks and returns block i's
// half-open range — the standard decomposition helper for VP bodies.
func ChunkRange(n, parts, i int) (lo, hi int) {
	return core.ChunkRange(n, parts, i)
}

// Global2D is a row-major two-dimensional view over a Global array.
type Global2D[T Elem] = core.Global2D[T]

// AllocGlobal2D allocates a rows x cols globally shared array.
func AllocGlobal2D[T Elem](rt *Runtime, name string, rows, cols int) *Global2D[T] {
	return core.AllocGlobal2D[T](rt, name, rows, cols)
}

// FillGlobal sets every element of g to v (node-level collective).
func FillGlobal[T Elem](rt *Runtime, g *Global[T], v T) { core.FillGlobal(rt, g, v) }

// CopyIn copies src into g's local partition (node-level collective; src
// is the full logical array).
func CopyIn[T Elem](rt *Runtime, g *Global[T], src []T) { core.CopyIn(rt, g, src) }

// CopyOut gathers the whole array onto every node (node-level
// collective) and returns it.
func CopyOut[T Elem](rt *Runtime, g *Global[T]) []T { return core.CopyOut(rt, g) }

// ReduceGlobal folds every element of g with op and returns the result on
// every node (node-level collective).
func ReduceGlobal[T Elem](rt *Runtime, g *Global[T], op func(a, b T) T) T {
	return core.ReduceGlobal(rt, g, op)
}

// PrefixSumGlobal replaces g in place with its exclusive prefix sum
// (node-level collective) — the paper's parallel-prefix utility.
func PrefixSumGlobal[T Elem](rt *Runtime, g *Global[T]) { core.PrefixSumGlobal(rt, g) }

// Event is one structured observation of a run (a send, receive, barrier
// release, or rank exit) for Options.Observer.
type Event = cluster.Event

// TraceCollector accumulates run events for post-mortem analysis:
// communication summaries and per-rank timelines.
type TraceCollector = trace.Collector

// NewTraceCollector returns an empty collector; install it with
// Options.Observer = collector.Observer().
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// Franklin returns the cost model shaped after the paper's platform, the
// NERSC Cray XT4 "Franklin" (4-core Opteron nodes, SeaStar interconnect).
func Franklin() *Machine { return machine.Franklin() }

// GenericMachine returns a round-numbered cost model convenient for
// hand-checked tests and examples.
func GenericMachine() *Machine { return machine.Generic() }

// Manycore returns a forward-looking cost model with the given core
// count per node, for exploring the paper's closing claim that PPM's
// advantage grows with cores per node.
func Manycore(cores int) *Machine { return machine.Manycore(cores) }
