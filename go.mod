module ppm

go 1.24
