// Example: PageRank over a random directed graph — a classic of the
// "unstructured applications" family the paper's introduction motivates
// (graph algorithms with high-volume random fine-grained access).
//
// The rank vector is globally shared. Each iteration is one global
// phase: every virtual processor walks its vertices' in-edges, reads the
// source ranks wherever they live (the runtime bundles the scattered
// remote reads), and writes the new rank of its own vertices. The phase
// semantics give the Jacobi-style iteration for free: reads observe the
// previous iteration's ranks because writes only commit at the phase end
// — no double buffering in the program.
//
//	$ go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"

	"ppm"
)

const (
	nVerts  = 1 << 14
	degree  = 12 // in-edges per vertex
	nodes   = 8
	damping = 0.85
	iters   = 12
)

// inEdge returns vertex v's e-th in-neighbor: a deterministic scatter
// (multiplicative hashing), so every node can generate the graph locally.
func inEdge(v, e int) int {
	h := uint64(v)*0x9e3779b97f4a7c15 + uint64(e)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	return int(h % nVerts)
}

func main() {
	rep, err := ppm.Run(ppm.Options{Nodes: nodes, Machine: ppm.Franklin()}, func(rt *ppm.Runtime) {
		rank := ppm.AllocGlobal[float64](rt, "rank", nVerts)
		contrib := ppm.AllocGlobal[float64](rt, "contrib", nVerts)
		lo, hi := rank.OwnerRange(rt)

		// Everyone starts with uniform rank; out-degrees are uniform
		// (each vertex is an in-neighbor `degree` times on average, and
		// contributes through its own out-edges — here we use the in-edge
		// formulation, dividing by the constant expected out-degree).
		local := rank.Local(rt)
		for i := range local {
			local[i] = 1.0 / nVerts
		}

		k := rt.CoresPerNode() * 8
		for it := 0; it < iters; it++ {
			rt.Do(k, func(vp *ppm.VP) {
				// Phase 1: publish each vertex's per-edge contribution.
				vp.GlobalPhase(func() {
					vlo, vhi := ppm.ChunkRange(hi-lo, k, vp.NodeRank())
					for i := vlo; i < vhi; i++ {
						v := lo + i
						contrib.Write(vp, v, rank.Read(vp, v)/degree)
					}
					vp.ChargeFlops(int64(vhi - vlo))
				})
				// Phase 2: gather contributions along in-edges.
				vp.GlobalPhase(func() {
					vlo, vhi := ppm.ChunkRange(hi-lo, k, vp.NodeRank())
					for i := vlo; i < vhi; i++ {
						v := lo + i
						sum := 0.0
						for e := 0; e < degree; e++ {
							sum += contrib.Read(vp, inEdge(v, e))
						}
						rank.Write(vp, v, (1-damping)/nVerts+damping*sum)
					}
					vp.ChargeFlops(int64((vhi - vlo) * (degree + 3)))
				})
			})
		}

		// Node-level check: ranks are a probability-ish vector.
		sum := 0.0
		for _, v := range rank.Local(rt) {
			if v <= 0 || math.IsNaN(v) {
				panic("non-positive rank")
			}
			sum += v
		}
		total := rt.AllReduce(sum, ppm.OpSum)
		if math.Abs(total-1) > 0.01 {
			panic(fmt.Sprintf("rank mass drifted to %v", total))
		}
		if rt.NodeID() == 0 {
			fmt.Printf("rank mass after %d iterations: %.6f\n", iters, total)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank over %d vertices x %d in-edges on %d nodes\n", nVerts, degree, nodes)
	fmt.Printf("simulated time: %v\n", rep.Makespan())
	fmt.Printf("scattered reads: %d remote elements moved in %d bundles\n",
		rep.Totals.RemoteReadElems, rep.Totals.BundlesOut)
}
