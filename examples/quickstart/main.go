// Quickstart: the paper's Section 5 code example, translated construct
// for construct.
//
// Given a sorted array A (globally shared) and a per-node array B
// (node-shared), find the location in A of each element of B. Each
// element is searched by one virtual processor inside a single global
// phase — the paper's own illustration of the programming model.
//
//	$ go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ppm"
)

const (
	n     = 1 << 16 // length of the sorted global array A
	k     = 1 << 10 // keys per node
	nodes = 4
)

func main() {
	rep, err := ppm.Run(ppm.Options{Nodes: nodes, Machine: ppm.Franklin()}, func(rt *ppm.Runtime) {
		// PPM_global_shared double A[n];
		// PPM_node_shared double B[k];  PPM_node_shared int rank_in_A[k];
		a := ppm.AllocGlobal[float64](rt, "A", n)
		b := ppm.AllocNode[float64](rt, "B", k)
		rankInA := ppm.AllocNode[int64](rt, "rank_in_A", k)

		// Node-level initialization: A holds the even numbers in order
		// (each node fills its own partition); B holds odd probes.
		lo, hi := a.OwnerRange(rt)
		local := a.Local(rt)
		for i := lo; i < hi; i++ {
			local[i-lo] = float64(2 * i)
		}
		keys := b.Local(rt)
		for j := range keys {
			keys[j] = float64(2*((j*2654435761+rt.NodeID()*97)%n) + 1)
		}

		// PPM_do(K) binary_search(n, A, B, rank_in_A);
		rt.Do(k, func(vp *ppm.VP) {
			// PPM_global_phase { ... }
			vp.GlobalPhase(func() {
				key := b.Read(vp, vp.NodeRank())
				left, right := 0, n
				for left+1 < right {
					middle := (left + right) / 2
					if a.Read(vp, middle) < key {
						left = middle
					} else {
						right = middle
					}
				}
				rankInA.Write(vp, vp.NodeRank(), int64(right))
			})
		})

		// Spot-check this node's results at node level.
		ranks := rankInA.Local(rt)
		for j := 0; j < k; j++ {
			want := int64(int(keys[j])/2 + 1) // first i with A[i] >= key
			if ranks[j] != want {
				panic(fmt.Sprintf("node %d key %d: rank %d, want %d", rt.NodeID(), j, ranks[j], want))
			}
		}
		if rt.NodeID() == 0 {
			fmt.Printf("node 0: first key %.0f found at rank %d of A\n", keys[0], ranks[0])
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d keys located on each of %d nodes\n", k, nodes)
	fmt.Printf("simulated time: %v\n", rep.Makespan())
	fmt.Printf("remote reads bundled: %d elements in %d bundles\n",
		rep.Totals.RemoteReadElems, rep.Totals.BundlesOut)
}
