// Example: 7-point Jacobi relaxation on a regular 3-D grid, written as a
// PPM program (the structured counterpoint to the paper's unstructured
// applications; see internal/apps/jacobi for the benchmarked version).
//
// Jacobi needs double buffering — every read must see the previous
// sweep's values — and PPM's global phase provides exactly that for
// free: within one phase all reads observe the begin-of-phase state
// while writes commit at phase end, so the program reads and writes the
// SAME shared array with no second buffer, no copy, and no halo
// exchange in sight.
//
//	$ go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"math"

	"ppm"
)

const (
	nx, ny, nz = 24, 24, 16
	n          = nx * ny * nz
	nodes      = 8
	sweeps     = 30
)

// source is the fixed right-hand side: a deterministic bump pattern.
func source(i int) float64 {
	x, y, z := i%nx, (i/nx)%ny, i/(nx*ny)
	return float64((x*3+y*5+z*7)%11) / 11
}

// relax computes one Jacobi update for point i, reading neighbors
// through read (which may reach across nodes).
func relax(i int, read func(j int) float64) float64 {
	x, y, z := i%nx, (i/nx)%ny, i/(nx*ny)
	sum := source(i)
	if x > 0 {
		sum += read(i - 1)
	}
	if x < nx-1 {
		sum += read(i + 1)
	}
	if y > 0 {
		sum += read(i - nx)
	}
	if y < ny-1 {
		sum += read(i + nx)
	}
	if z > 0 {
		sum += read(i - nx*ny)
	}
	if z < nz-1 {
		sum += read(i + nx*ny)
	}
	return sum / 7
}

func main() {
	var final []float64
	rep, err := ppm.Run(ppm.Options{Nodes: nodes, Machine: ppm.Franklin()}, func(rt *ppm.Runtime) {
		u := ppm.AllocGlobal[float64](rt, "u", n)
		lo, hi := u.OwnerRange(rt)

		k := rt.CoresPerNode() * 2
		for s := 0; s < sweeps; s++ {
			// One global phase per sweep: reads see sweep s-1, writes
			// become visible at the phase boundary. That IS the double
			// buffer.
			rt.Do(k, func(vp *ppm.VP) {
				vp.GlobalPhase(func() {
					vlo, vhi := ppm.ChunkRange(hi-lo, k, vp.NodeRank())
					for i := lo + vlo; i < lo+vhi; i++ {
						u.Write(vp, i, relax(i, func(j int) float64 { return u.Read(vp, j) }))
					}
					vp.ChargeFlops(int64(9 * (vhi - vlo)))
				})
			})
		}
		if rt.NodeID() == 0 {
			final = ppm.CopyOut(rt, u)
		} else {
			ppm.CopyOut(rt, u)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the obvious sequential double-buffered reference.
	ref := make([]float64, n)
	next := make([]float64, n)
	for s := 0; s < sweeps; s++ {
		for i := range ref {
			next[i] = relax(i, func(j int) float64 { return ref[j] })
		}
		ref, next = next, ref
	}
	for i := range ref {
		if math.Float64bits(final[i]) != math.Float64bits(ref[i]) {
			log.Fatalf("point %d: %v != reference %v", i, final[i], ref[i])
		}
	}

	fmt.Printf("relaxed %d points for %d sweeps, bit-identical to the sequential reference\n", n, sweeps)
	fmt.Printf("simulated time on %d nodes: %v\n", nodes, rep.Makespan())
	fmt.Printf("halo traffic: %d remote reads in %d bundles\n",
		rep.Totals.RemoteReadElems, rep.Totals.BundlesOut)
}
