// Example: gravitational N-body with direct summation, showing PPM's
// asynchronous side by mixing node phases and global phases in one
// program (the paper's full Barnes-Hut application — Application 3 —
// lives in internal/apps/nbody; this example keeps the physics simple to
// foreground the model).
//
// Positions and masses are globally shared; velocities are node-shared.
// Each step is one global phase (every VP reads all positions, the
// runtime bundles what is remote) followed by a node phase that
// integrates this node's bodies from node-shared state only — no cluster
// synchronization in the second phase.
//
//	$ go run ./examples/nbody
package main

import (
	"fmt"
	"log"
	"math"

	"ppm"
)

const (
	nBodies = 2048
	nodes   = 4
	steps   = 3
	dt      = 1e-3
	eps     = 0.05
)

func main() {
	var energyDrift float64
	rep, err := ppm.Run(ppm.Options{Nodes: nodes, Machine: ppm.Franklin()}, func(rt *ppm.Runtime) {
		px := ppm.AllocGlobal[float64](rt, "px", nBodies)
		py := ppm.AllocGlobal[float64](rt, "py", nBodies)
		pz := ppm.AllocGlobal[float64](rt, "pz", nBodies)
		m := ppm.AllocGlobal[float64](rt, "m", nBodies)
		lo, hi := px.OwnerRange(rt)
		nLocal := hi - lo
		maxLocal := nBodies/nodes + 1
		vx := ppm.AllocNode[float64](rt, "vx", maxLocal)
		vy := ppm.AllocNode[float64](rt, "vy", maxLocal)
		vz := ppm.AllocNode[float64](rt, "vz", maxLocal)
		ax := ppm.AllocNode[float64](rt, "ax", maxLocal)
		ay := ppm.AllocNode[float64](rt, "ay", maxLocal)
		az := ppm.AllocNode[float64](rt, "az", maxLocal)

		// Deterministic initial conditions: a ring with mass 1/n.
		for i := lo; i < hi; i++ {
			angle := 2 * math.Pi * float64(i) / nBodies
			px.Local(rt)[i-lo] = math.Cos(angle)
			py.Local(rt)[i-lo] = math.Sin(angle)
			pz.Local(rt)[i-lo] = 0.1 * math.Sin(7*angle)
			m.Local(rt)[i-lo] = 1.0 / nBodies
		}

		k := rt.CoresPerNode() * 4
		for s := 0; s < steps; s++ {
			rt.Do(k, func(vp *ppm.VP) {
				// Global phase: all-pairs forces on this node's bodies,
				// reading every body's position from global shared memory.
				vp.GlobalPhase(func() {
					vlo, vhi := ppm.ChunkRange(nLocal, k, vp.NodeRank())
					for i := vlo; i < vhi; i++ {
						xi := px.Read(vp, lo+i)
						yi := py.Read(vp, lo+i)
						zi := pz.Read(vp, lo+i)
						var fx, fy, fz float64
						for j := 0; j < nBodies; j++ {
							dx := px.Read(vp, j) - xi
							dy := py.Read(vp, j) - yi
							dz := pz.Read(vp, j) - zi
							d2 := dx*dx + dy*dy + dz*dz + eps*eps
							w := m.Read(vp, j) / (d2 * math.Sqrt(d2))
							fx += w * dx
							fy += w * dy
							fz += w * dz
						}
						ax.Write(vp, i, fx)
						ay.Write(vp, i, fy)
						az.Write(vp, i, fz)
					}
					vp.ChargeFlops(int64(20 * nBodies * (vhi - vlo)))
				})
				// Node phase: integrate — node-shared state only, so the
				// nodes need not synchronize here at all.
				vp.NodePhase(func() {
					vlo, vhi := ppm.ChunkRange(nLocal, k, vp.NodeRank())
					for i := vlo; i < vhi; i++ {
						vx.Write(vp, i, vx.Read(vp, i)+dt*ax.Read(vp, i))
						vy.Write(vp, i, vy.Read(vp, i)+dt*ay.Read(vp, i))
						vz.Write(vp, i, vz.Read(vp, i)+dt*az.Read(vp, i))
					}
					vp.ChargeFlops(int64(6 * (vhi - vlo)))
				})
				// Global phase: move this node's bodies in the shared
				// position arrays (own partition writes).
				vp.GlobalPhase(func() {
					vlo, vhi := ppm.ChunkRange(nLocal, k, vp.NodeRank())
					for i := vlo; i < vhi; i++ {
						px.Write(vp, lo+i, px.Read(vp, lo+i)+dt*vx.Read(vp, i))
						py.Write(vp, lo+i, py.Read(vp, lo+i)+dt*vy.Read(vp, i))
						pz.Write(vp, lo+i, pz.Read(vp, lo+i)+dt*vz.Read(vp, i))
					}
					vp.ChargeFlops(int64(6 * (vhi - vlo)))
				})
			})
		}

		// Sanity: kinetic energy stays finite and small.
		ke := 0.0
		for i := 0; i < nLocal; i++ {
			v := vx.Local(rt)[i]*vx.Local(rt)[i] + vy.Local(rt)[i]*vy.Local(rt)[i] + vz.Local(rt)[i]*vz.Local(rt)[i]
			ke += 0.5 * m.Local(rt)[i] * v
		}
		total := rt.AllReduce(ke, ppm.OpSum)
		if math.IsNaN(total) || total > 1 {
			panic(fmt.Sprintf("kinetic energy diverged: %v", total))
		}
		energyDrift = total
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bodies, %d steps on %d nodes\n", nBodies, steps, nodes)
	fmt.Printf("final kinetic energy: %.3e\n", energyDrift)
	fmt.Printf("simulated time: %v (remote reads %d, bundles %d)\n",
		rep.Makespan(), rep.Totals.RemoteReadElems, rep.Totals.BundlesOut)
}
