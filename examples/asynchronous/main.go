// Example: the paper's asynchronous mode (§3.3, "supporting both
// synchronous and asynchronous modes on different nodes"). Different
// nodes invoke different PPM functions with different numbers of virtual
// processors, synchronizing only within each node through node phases;
// the cluster never barriers until the final, explicitly synchronous
// reduction.
//
// Half the nodes run a "renderer" (many small VPs over node-shared
// tiles), the other half an "analyzer" (few heavy VPs) — a caricature of
// coupled workloads that PPM lets coexist without global lockstep.
//
//	$ go run ./examples/asynchronous
package main

import (
	"fmt"
	"log"

	"ppm"
)

const nodes = 6

func main() {
	rep, err := ppm.Run(ppm.Options{Nodes: nodes, Machine: ppm.Franklin()}, func(rt *ppm.Runtime) {
		tiles := ppm.AllocNode[float64](rt, "tiles", 256)
		local := ppm.AllocNode[float64](rt, "result", 1)

		renderer := func(vp *ppm.VP) {
			// Many fine VPs: each shades a strip of tiles, twice.
			for pass := 0; pass < 2; pass++ {
				vp.NodePhase(func() {
					lo, hi := ppm.ChunkRange(256, vp.K(), vp.NodeRank())
					for i := lo; i < hi; i++ {
						v := tiles.Read(vp, i)
						tiles.Write(vp, i, v/2+float64((i*31+pass)%7))
					}
					vp.ChargeFlops(int64(4 * (hi - lo)))
				})
			}
			vp.NodePhase(func() {
				lo, hi := ppm.ChunkRange(256, vp.K(), vp.NodeRank())
				var s float64
				for i := lo; i < hi; i++ {
					s += tiles.Read(vp, i)
				}
				local.Add(vp, 0, s)
				vp.ChargeFlops(int64(hi - lo))
			})
		}

		analyzer := func(vp *ppm.VP) {
			// Few heavy VPs: one long node phase each.
			vp.NodePhase(func() {
				acc := 0.0
				for i := 0; i < 200000; i++ {
					acc += float64(i%17) * 1e-6
				}
				local.Add(vp, 0, acc)
				vp.ChargeFlops(400000)
			})
		}

		// The paper: "the PPM function that is invoked can be different on
		// different nodes ... expression K can evaluate to different
		// values on different nodes."
		if rt.NodeID()%2 == 0 {
			rt.Do(64, renderer)
		} else {
			rt.Do(rt.CoresPerNode(), analyzer)
		}

		// Only now do the nodes meet: a synchronous reduction.
		total := rt.AllReduce(local.Local(rt)[0], ppm.OpSum)
		if rt.NodeID() == 0 {
			fmt.Printf("combined result: %.3f\n", total)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d nodes ran two different programs; simulated time %v\n", nodes, rep.Makespan())
	fmt.Printf("global phases: %d (none until the final reduction), node phases: %d\n",
		rep.Totals.GlobalPhases, rep.Totals.NodePhases)
}
