// Example: a conjugate-gradient solver for a 3-D 7-point Poisson problem,
// written as a PPM program (a compact cousin of the paper's Application
// 1, which uses a 27-point stencil; see internal/apps/cg for that one).
//
// The search direction lives in global shared memory, so the sparse
// matrix-vector product just indexes it globally — neighbor entries on
// other nodes are fetched and bundled by the runtime, with no
// communication code in sight. Dot products accumulate into node-shared
// memory and finish with the node-level reduction utility.
//
//	$ go run ./examples/cg
package main

import (
	"fmt"
	"log"
	"math"

	"ppm"
)

const (
	nx, ny, nz = 24, 24, 24
	n          = nx * ny * nz
	nodes      = 8
	maxIter    = 120
	tol        = 1e-8
)

// stencil returns the 7-point operator's entries for global row g as
// (columns, values): 6 on the diagonal, -1 toward each grid neighbor.
func stencil(g int) ([7]int, [7]float64, int) {
	var cols [7]int
	var vals [7]float64
	x, y, z := g%nx, (g/nx)%ny, g/(nx*ny)
	cnt := 0
	add := func(c int, v float64) { cols[cnt], vals[cnt] = c, v; cnt++ }
	add(g, 7) // diagonal (strictly dominant: SPD)
	if x > 0 {
		add(g-1, -1)
	}
	if x < nx-1 {
		add(g+1, -1)
	}
	if y > 0 {
		add(g-nx, -1)
	}
	if y < ny-1 {
		add(g+nx, -1)
	}
	if z > 0 {
		add(g-nx*ny, -1)
	}
	if z < nz-1 {
		add(g+nx*ny, -1)
	}
	return cols, vals, cnt
}

func main() {
	var iters int
	var residual float64
	rep, err := ppm.Run(ppm.Options{Nodes: nodes, Machine: ppm.Franklin()}, func(rt *ppm.Runtime) {
		p := ppm.AllocGlobal[float64](rt, "p", n)
		w := ppm.AllocNode[float64](rt, "w", n/nodes+1)
		acc := ppm.AllocNode[float64](rt, "acc", 1)
		lo, hi := p.OwnerRange(rt)
		nLocal := hi - lo

		// b = A*1 so the exact solution is all ones.
		b := make([]float64, nLocal)
		for i := range b {
			_, vals, cnt := stencil(lo + i)
			for c := 0; c < cnt; c++ {
				b[i] += vals[c]
			}
		}
		x := make([]float64, nLocal)
		r := append([]float64(nil), b...)
		copy(p.Local(rt), r)

		dot := func(a, c []float64) float64 {
			s := 0.0
			for i := range a {
				s += a[i] * c[i]
			}
			rt.ChargeFlops(int64(2 * len(a)))
			return s
		}
		normB := math.Sqrt(rt.AllReduce(dot(b, b), ppm.OpSum))
		rs := rt.AllReduce(dot(r, r), ppm.OpSum)

		k := rt.CoresPerNode() * 4
		for it := 0; it < maxIter; it++ {
			acc.Local(rt)[0] = 0
			rt.Do(k, func(vp *ppm.VP) {
				vp.GlobalPhase(func() {
					vlo, vhi := ppm.ChunkRange(nLocal, k, vp.NodeRank())
					part := 0.0
					for row := vlo; row < vhi; row++ {
						cols, vals, cnt := stencil(lo + row)
						s := 0.0
						for c := 0; c < cnt; c++ {
							s += vals[c] * p.Read(vp, cols[c])
						}
						w.Write(vp, row, s)
						part += s * p.Read(vp, lo+row)
					}
					acc.Add(vp, 0, part)
					vp.ChargeFlops(int64(16 * (vhi - vlo)))
				})
			})
			alpha := rs / rt.AllReduce(acc.Local(rt)[0], ppm.OpSum)
			pl, wl := p.Local(rt), w.Local(rt)
			for i := 0; i < nLocal; i++ {
				x[i] += alpha * pl[i]
				r[i] -= alpha * wl[i]
			}
			rt.ChargeFlops(int64(4 * nLocal))
			rsNew := rt.AllReduce(dot(r, r), ppm.OpSum)
			iters, residual = it+1, math.Sqrt(rsNew)
			if residual <= tol*normB {
				break
			}
			beta := rsNew / rs
			for i := range pl {
				pl[i] = r[i] + beta*pl[i]
			}
			rt.ChargeFlops(int64(2 * nLocal))
			rs = rsNew
		}

		// Verify against the known solution (all ones).
		worst := 0.0
		for i := range x {
			if d := math.Abs(x[i] - 1); d > worst {
				worst = d
			}
		}
		if worst > 1e-6 {
			panic(fmt.Sprintf("node %d: solution off by %g", rt.NodeID(), worst))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %d unknowns in %d CG iterations (residual %.2e)\n", n, iters, residual)
	fmt.Printf("simulated time on %d nodes: %v\n", nodes, rep.Makespan())
	fmt.Printf("halo traffic: %d remote reads in %d bundles\n",
		rep.Totals.RemoteReadElems, rep.Totals.BundlesOut)
}
