// Steady-state benchmarks: the same phase shape executed repeatedly,
// contrasting cold iterations (plan cache off — every commit re-merges
// read sets and reallocates its scratch) with warm iterations (plan
// cache on — doRuns, VP workers, write buffers, and phase plans are all
// reused, and the commit replays the recorded merge). A checked-in
// summary lives in BENCH_steady.json; regenerate it with
//
//	BENCH_STEADY=1 go test -run TestSteadyBenchArtifact .
//
// The artifact test enforces the steady-state contract: warm CG and
// Jacobi iterations allocate nothing and run at least 1.5x faster than
// cold ones.
package ppm_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ppm/internal/core"
	"ppm/internal/machine"
	"ppm/internal/sparse"
)

// steadyCG runs b.N warm-loop iterations of the Figure-1 CG SpMV phase
// (27-point stencil columns gathered through ReadBlock) at 4 nodes with
// everything loop-invariant hoisted: the Do body, the phase closure
// targets, and the per-VP gather buffers. With the plan cache on, every
// iteration after the warmup replays its recorded plan.
func steadyCG(b *testing.B, cache bool) {
	o := core.Options{Nodes: 4, Machine: machine.Franklin(), NoPlanCache: !cache}
	const nx, ny, nz = 8, 8, 16
	_, err := core.Run(o, func(rt *core.Runtime) {
		n := nx * ny * nz
		p := core.AllocGlobal[float64](rt, "steady.p", n)
		lo, hi := p.OwnerRange(rt)
		nLocal := hi - lo
		w := core.AllocNode[float64](rt, "steady.w", n/rt.NodeCount()+1)
		a := sparse.Stencil27Rows(nx, ny, nz, lo, hi)
		runPtr, runs, maxRun := a.ColRuns()
		pl := p.Local(rt)
		for i := range pl {
			pl[i] = float64(lo+i) * 1e-3
		}
		k := rt.CoresPerNode() * 4
		bufs := make([][]float64, k)
		for i := range bufs {
			bufs[i] = make([]float64, maxRun)
		}
		body := func(vp *core.VP) {
			vp.GlobalPhase(func() {
				vlo, vhi := core.ChunkRange(nLocal, k, vp.NodeRank())
				buf := bufs[vp.NodeRank()]
				for row := vlo; row < vhi; row++ {
					var s float64
					kk := a.RowPtr[row]
					for _, cr := range runs[runPtr[row]:runPtr[row+1]] {
						p.ReadBlock(vp, cr.Col, cr.Col+cr.N, buf)
						for j := 0; j < cr.N; j++ {
							s += a.Val[kk] * buf[j]
							kk++
						}
					}
					w.Write(vp, row, s)
				}
			})
		}
		// Warm up: record the plan, grow every scratch buffer to its
		// high-water mark, and start the persistent VP workers.
		for i := 0; i < 3; i++ {
			rt.Do(k, body)
		}
		rt.Barrier()
		if rt.NodeID() == 0 {
			b.ReportAllocs()
			b.ResetTimer()
		}
		for it := 0; it < b.N; it++ {
			rt.Do(k, body)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// steadyJacobi runs b.N warm-loop iterations of a 1-D Jacobi sweep
// phase at 4 nodes: each VP gathers its chunk plus a one-element halo
// (crossing a partition boundary at the chunk edges) and writes the
// smoothed chunk back as one block.
func steadyJacobi(b *testing.B, cache bool) {
	o := core.Options{Nodes: 4, Machine: machine.Franklin(), NoPlanCache: !cache}
	const n = 4096
	_, err := core.Run(o, func(rt *core.Runtime) {
		u := core.AllocGlobal[float64](rt, "steady.u", n)
		lo, hi := u.OwnerRange(rt)
		nLocal := hi - lo
		ul := u.Local(rt)
		for i := range ul {
			ul[i] = float64(lo + i)
		}
		k := rt.CoresPerNode() * 4
		bufs := make([][]float64, k)
		outs := make([][]float64, k)
		for i := range bufs {
			vlo, vhi := core.ChunkRange(nLocal, k, i)
			bufs[i] = make([]float64, vhi-vlo+2)
			outs[i] = make([]float64, vhi-vlo)
		}
		body := func(vp *core.VP) {
			vp.GlobalPhase(func() {
				r := vp.NodeRank()
				vlo, vhi := core.ChunkRange(nLocal, k, r)
				glo, ghi := lo+vlo, lo+vhi
				if glo == ghi {
					return
				}
				flo, fhi := glo-1, ghi+1
				if flo < 0 {
					flo = 0
				}
				if fhi > n {
					fhi = n
				}
				buf := bufs[r][: fhi-flo : fhi-flo]
				u.ReadBlock(vp, flo, fhi, buf)
				out := outs[r]
				for i := glo; i < ghi; i++ {
					c := buf[i-flo]
					l, rr := c, c
					if i > 0 {
						l = buf[i-1-flo]
					}
					if i < n-1 {
						rr = buf[i+1-flo]
					}
					out[i-glo] = 0.25*l + 0.5*c + 0.25*rr
				}
				u.WriteBlock(vp, glo, out)
			})
		}
		for i := 0; i < 3; i++ {
			rt.Do(k, body)
		}
		rt.Barrier()
		if rt.NodeID() == 0 {
			b.ReportAllocs()
			b.ResetTimer()
		}
		for it := 0; it < b.N; it++ {
			rt.Do(k, body)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSteadyCG(b *testing.B) {
	b.Run("cold", func(b *testing.B) { steadyCG(b, false) })
	b.Run("warm", func(b *testing.B) { steadyCG(b, true) })
}

func BenchmarkSteadyJacobi(b *testing.B) {
	b.Run("cold", func(b *testing.B) { steadyJacobi(b, false) })
	b.Run("warm", func(b *testing.B) { steadyJacobi(b, true) })
}

// TestSteadyBenchArtifact regenerates BENCH_steady.json and enforces
// the steady-state contract: warm iterations of the CG and Jacobi
// phase benchmarks allocate nothing and beat cold by at least 1.5x.
// Gated behind an environment variable so routine test runs stay fast.
func TestSteadyBenchArtifact(t *testing.T) {
	if os.Getenv("BENCH_STEADY") == "" {
		t.Skip("set BENCH_STEADY=1 to regenerate BENCH_steady.json")
	}
	type entry struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	run := func(name string, f func(*testing.B)) entry {
		r := testing.Benchmark(f)
		return entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	kernels := []struct {
		name string
		f    func(*testing.B, bool)
	}{
		{"steady_cg_phase", steadyCG},
		{"steady_jacobi_phase", steadyJacobi},
	}
	var results []entry
	for _, kn := range kernels {
		cold := run(kn.name+"/cold", func(b *testing.B) { kn.f(b, false) })
		warm := run(kn.name+"/warm", func(b *testing.B) { kn.f(b, true) })
		results = append(results, cold, warm)
		if warm.AllocsPerOp != 0 {
			t.Errorf("%s: warm iterations allocate %d allocs/op (%d B/op), want 0",
				kn.name, warm.AllocsPerOp, warm.BytesPerOp)
		}
		if ratio := cold.NsPerOp / warm.NsPerOp; ratio < 1.5 {
			t.Errorf("%s: warm is only %.2fx faster than cold (cold %.0f ns/op, warm %.0f ns/op), want >= 1.5x",
				kn.name, ratio, cold.NsPerOp, warm.NsPerOp)
		}
	}
	doc := struct {
		Note    string  `json:"note"`
		Go      string  `json:"go"`
		Results []entry `json:"results"`
	}{
		Note: "Steady-state phase iteration costs at 4 simulated nodes. Each op is one " +
			"Do+global-phase+commit of a fixed shape: steady_cg_phase gathers 27-point " +
			"stencil columns through ReadBlock (metadata-heavy, many short runs); " +
			"steady_jacobi_phase is a 1-D halo sweep (two-run read set, one block write). " +
			"cold runs with the plan cache off (NoPlanCache / PPM_PLAN_CACHE=0); warm " +
			"replays recorded phase plans and must be allocation-free.",
		Go:      runtime.Version(),
		Results: results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_steady.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.Results {
		t.Logf("%-28s %12.1f ns/op %8d allocs/op %10d B/op", e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	_ = fmt.Sprintf
}
