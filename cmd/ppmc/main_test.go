package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestCheckBadFixture(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lang", "testdata", "bad_phase.ppm")
	var code int
	out := capture(t, func() { code = check([]string{fixture}, false) })
	if code != 1 {
		t.Errorf("check exit = %d, want 1", code)
	}
	for _, want := range []string{
		fixture + ":8:", "[phasebound]",
		fixture + ":10:", "[constwrite]", "[phaserace]",
		"problems (1 errors, 2 warnings)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckJSON(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lang", "testdata", "bad_phase.ppm")
	var code int
	out := capture(t, func() { code = check([]string{fixture}, true) })
	if code != 1 {
		t.Errorf("check exit = %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Rule     string `json:"rule"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	if diags[0].Rule != "phasebound" || diags[0].Severity != "error" || diags[0].Line != 8 {
		t.Errorf("unexpected first diagnostic: %+v", diags[0])
	}
	if diags[1].Rule != "constwrite" || diags[1].Severity != "warning" || diags[1].Line != 10 {
		t.Errorf("unexpected second diagnostic: %+v", diags[1])
	}
	if diags[2].Rule != "phaserace" || diags[2].Severity != "warning" || diags[2].Line != 10 {
		t.Errorf("unexpected third diagnostic: %+v", diags[2])
	}
}

func TestCheckCleanExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "language", "*.ppm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	var code int
	out := capture(t, func() { code = check(files, false) })
	if code != 0 {
		t.Errorf("check exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("expected ok summary, got %q", out)
	}
}
