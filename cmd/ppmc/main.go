// Command ppmc is the PPM language front end — the paper's §3.4
// "combination of a source-to-source compiler and a light-weight runtime
// library", reproduced: it either interprets a PPM-language program
// directly on the simulated cluster, or emits the translated Go source
// that targets this repository's public API.
//
// Usage:
//
//	ppmc run  [-nodes 4] [-cores 4] prog.ppm   # execute on the simulator
//	ppmc emit prog.ppm                         # print translated Go
//	ppmc check [-json] prog.ppm...             # full semantic + phase lint
//
// check reports every diagnostic with file:line:col positions — semantic
// errors plus phase-semantics warnings (guaranteed strict-mode write
// conflicts, overlapping VP write sets and index sets it cannot prove
// disjoint [phaserace, phaserace.possible], stale same-phase reads,
// unused shared arrays) — and exits nonzero when there are findings.
// -json emits them as a JSON array for tooling.
//
// The language is documented in internal/lang; examples/language contains
// runnable programs (including the paper's Section 5 listing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"ppm/internal/core"
	"ppm/internal/lang"
	"ppm/internal/machine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppmc: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "cluster nodes (run)")
	cores := fs.Int("cores", 4, "cores per node (run)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (check)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		log.Fatal(err)
	}
	if cmd == "check" {
		if fs.NArg() < 1 {
			usage()
		}
		os.Exit(check(fs.Args(), *jsonOut))
	}
	if fs.NArg() != 1 {
		usage()
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		log.Fatalf("%s:%v", fs.Arg(0), err)
	}

	switch cmd {
	case "emit":
		out, err := lang.GenerateGo(prog)
		if err != nil {
			log.Fatalf("%s:%v", fs.Arg(0), err)
		}
		fmt.Print(out)
	case "run":
		opt := core.Options{Nodes: *nodes, CoresPerNode: *cores, Machine: machine.Franklin()}
		rep, err := lang.Interpret(prog, opt, os.Stdout)
		if err != nil {
			log.Fatalf("%s:%v", fs.Arg(0), err)
		}
		fmt.Printf("simulated time: %v on %d nodes (%d global phases, %d VPs)\n",
			rep.Makespan(), *nodes, rep.Totals.GlobalPhases, rep.Totals.VPsStarted)
	default:
		usage()
	}
}

// fileDiag is one diagnostic tagged with the file it came from.
type fileDiag struct {
	File string `json:"file"`
	lang.Diag
}

// check analyzes every file and prints all diagnostics. Exit status: 0
// when clean, 1 on findings, 2 on usage errors (flag package exits 2).
func check(files []string, jsonOut bool) int {
	var all []fileDiag
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			all = append(all, fileDiag{name, lang.Diag{
				Rule: "load", Sev: lang.SevError, Msg: err.Error(),
			}})
			continue
		}
		prog, perr := lang.Parse(string(src))
		if perr != nil {
			d := lang.Diag{Rule: "parse", Sev: lang.SevError, Msg: perr.Error()}
			if e, ok := perr.(*lang.Error); ok {
				d.Line, d.Col, d.Msg = e.Line, e.Col, e.Msg
			}
			all = append(all, fileDiag{name, d})
			continue
		}
		for _, d := range lang.Analyze(prog) {
			all = append(all, fileDiag{name, d})
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if all == nil {
			all = []fileDiag{}
		}
		if err := enc.Encode(all); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, d := range all {
			fmt.Printf("%s:%s\n", d.File, d.Diag)
		}
	}

	if len(all) > 0 {
		nerr := 0
		for _, d := range all {
			if d.Sev == lang.SevError {
				nerr++
			}
		}
		if !jsonOut {
			fmt.Printf("%d problems (%d errors, %d warnings)\n", len(all), nerr, len(all)-nerr)
		}
		return 1
	}
	if !jsonOut {
		fmt.Printf("ok\t%d files checked\n", len(files))
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ppmc run  [-nodes N] [-cores C] prog.ppm
       ppmc emit prog.ppm
       ppmc check [-json] prog.ppm...`)
	os.Exit(2)
}
