// Command ppmc is the PPM language front end — the paper's §3.4
// "combination of a source-to-source compiler and a light-weight runtime
// library", reproduced: it either interprets a PPM-language program
// directly on the simulated cluster, or emits the translated Go source
// that targets this repository's public API.
//
// Usage:
//
//	ppmc run  [-nodes 4] [-cores 4] prog.ppm   # execute on the simulator
//	ppmc emit prog.ppm                         # print translated Go
//	ppmc check prog.ppm                        # parse and type-check only
//
// The language is documented in internal/lang; examples/language contains
// a runnable program (the paper's Section 5 listing).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ppm/internal/core"
	"ppm/internal/lang"
	"ppm/internal/machine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppmc: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "cluster nodes (run)")
	cores := fs.Int("cores", 4, "cores per node (run)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		log.Fatal(err)
	}
	if fs.NArg() != 1 {
		usage()
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		log.Fatalf("%s:%v", fs.Arg(0), err)
	}

	switch cmd {
	case "check":
		if err := lang.Check(prog); err != nil {
			log.Fatalf("%s:%v", fs.Arg(0), err)
		}
		fmt.Println("ok")
	case "emit":
		out, err := lang.GenerateGo(prog)
		if err != nil {
			log.Fatalf("%s:%v", fs.Arg(0), err)
		}
		fmt.Print(out)
	case "run":
		opt := core.Options{Nodes: *nodes, CoresPerNode: *cores, Machine: machine.Franklin()}
		rep, err := lang.Interpret(prog, opt, os.Stdout)
		if err != nil {
			log.Fatalf("%s:%v", fs.Arg(0), err)
		}
		fmt.Printf("simulated time: %v on %d nodes (%d global phases, %d VPs)\n",
			rep.Makespan(), *nodes, rep.Totals.GlobalPhases, rep.Totals.VPsStarted)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ppmc run|emit|check [-nodes N] [-cores C] prog.ppm")
	os.Exit(2)
}
