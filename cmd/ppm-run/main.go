// Command ppm-run executes a single application run — one app, one
// programming model, one cluster shape — and prints the result summary
// and the run report. It is the quickest way to poke at the simulator
// interactively.
//
// With -distributed the run leaves the simulator entirely: ppm-run forks
// one ppm-node process per node on localhost, the processes connect into
// a TCP mesh, and the same application produces bit-identical results
// over real sockets (the report then counts real traffic, not modeled
// time).
//
// Usage:
//
//	ppm-run -app cg|colloc|nbody|jacobi|search [-model ppm|mpi] [-nodes 8] [-cores 4]
//	        [-no-bundling] [-no-overlap] [-no-readcache] [-static] [-smartmap]
//	        [-parallel] [-distributed [-node-bin path/to/ppm-node]]
//	        [-max-restarts N] [-checkpoint-dir DIR [-checkpoint-every K]]
//	        [-hb-interval D] [-hb-timeout D] [-op-timeout D]
//	        [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	        [app-specific flags, see -h]
//
// With -max-restarts the distributed launcher supervises the fleet: when
// a rank dies the survivors self-abort (failure detector), everything is
// relaunched, and — with -checkpoint-dir — the new fleet resumes from
// the last checkpoint every rank completed, bit-identically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/search"
	"ppm/internal/core"
	"ppm/internal/dist"
	"ppm/internal/jobspec"
	"ppm/internal/machine"
	"ppm/internal/trace"
)

// startProfiles arms the optional pprof outputs and returns the function
// that finalizes them (stops the CPU profile, snapshots the heap).
func startProfiles(cpu, mem string) func() {
	var stopCPU func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		if stopCPU != nil {
			stopCPU()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppm-run: ")

	app := flag.String("app", "cg", "application: cg, colloc, nbody, jacobi, search")
	model := flag.String("model", "ppm", "programming model: ppm or mpi")
	nodes := flag.Int("nodes", 8, "cluster nodes")
	cores := flag.Int("cores", 4, "cores per node")
	noBundling := flag.Bool("no-bundling", false, "disable remote-access bundling (PPM)")
	noOverlap := flag.Bool("no-overlap", false, "disable comm/compute overlap (PPM)")
	noReadCache := flag.Bool("no-readcache", false, "disable the node-level read cache (PPM)")
	static := flag.Bool("static", false, "static VP-to-core schedule (PPM)")
	smartMap := flag.Bool("smartmap", false, "enable SmartMap-style intra-node MPI optimization")
	timeline := flag.Bool("timeline", false, "print a communication summary and per-rank timeline (PPM runs)")
	parallel := flag.Bool("parallel", false, "run the simulator on the parallel host scheduler (bit-identical results)")
	distributed := flag.Bool("distributed", false, "run as real node processes over loopback TCP instead of the simulator (PPM)")
	nodeBin := flag.String("node-bin", "", "ppm-node binary for -distributed (default: next to this binary, else $PATH)")
	maxRestarts := flag.Int("max-restarts", 0, "distributed: relaunch the fleet up to this many times after a rank failure")
	ckptDir := flag.String("checkpoint-dir", "", "distributed: write phase-boundary checkpoints here; restarts resume from them")
	ckptEvery := flag.Int("checkpoint-every", 0, "distributed: minimum committed global phases between checkpoints (default 1)")
	perRankRestarts := flag.Int("per-rank-restarts", 0, "distributed: declare a host permanently dead after it is blamed for this many consecutive failed attempts (default 2)")
	minNodes := flag.Int("min-nodes", 0, "distributed: never rescale the fleet below this many host processes (default 1)")
	bundleAdaptive := flag.Bool("bundle-adaptive", false, "distributed: adaptive wire bundling (immediate critical-path flushes, growing commit bundles)")
	wireCodec := flag.String("wire-codec", "", "distributed: commit-stream encoding to offer peers (raw or delta; node default raw)")
	flushStagger := flag.Duration("flush-stagger", 0, "distributed: minimum spacing between one process's per-peer flushes (0 disables)")
	hbInterval := flag.Duration("hb-interval", 0, "distributed: failure-detector probe interval (node default 500ms, negative disables)")
	hbTimeout := flag.Duration("hb-timeout", 0, "distributed: declare a silent peer dead after this long (node default 5s)")
	opTimeout := flag.Duration("op-timeout", 0, "distributed: deadline for one remote read or commit wait (node default 60s)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	specPath := flag.String("spec", "", "run the job described by this jobspec JSON file (app/model flags are ignored)")
	jsonOut := flag.Bool("json", false, "with -spec: print the flattened jobspec result as one JSON line")
	timeout := flag.Duration("timeout", 0, "abort the run past this wall-clock bound (distributed: the engine deadline names the rank and in-flight operation)")

	cgGrid := flag.String("cg-grid", "24x24x48", "cg: grid NXxNYxNZ")
	cgIters := flag.Int("cg-iters", 20, "cg: iterations (tol=0)")
	collocLevels := flag.Int("colloc-levels", 7, "colloc: levels")
	collocM0 := flag.Int("colloc-m0", 12, "colloc: level-0 basis count")
	bhN := flag.Int("bh-n", 3000, "nbody: bodies")
	bhSteps := flag.Int("bh-steps", 2, "nbody: steps")
	jacGrid := flag.String("jacobi-grid", "24x24x48", "jacobi: grid NXxNYxNZ")
	jacSweeps := flag.Int("jacobi-sweeps", 10, "jacobi: sweeps")
	searchN := flag.Int("search-n", 1<<20, "search: sorted array length")
	searchK := flag.Int("search-k", 1<<14, "search: keys per node")
	flag.Parse()

	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()

	if *specPath != "" {
		runSpec(*specPath, *jsonOut, *nodeBin, launchCfg{
			maxRestarts: *maxRestarts, ckptDir: *ckptDir, ckptEvery: *ckptEvery,
			perRankRestarts: *perRankRestarts, minNodes: *minNodes,
		}, *timeout)
		return
	}
	if *timeout > 0 && !*distributed {
		// Simulator watchdog. Distributed runs instead forward a
		// per-rank engine deadline, whose abort names the rank and the
		// in-flight operation.
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "ppm-run: run exceeded -timeout %v\n", *timeout)
			os.Exit(1)
		})
	}

	if *distributed {
		if *model != "ppm" {
			exitOn(fmt.Errorf("-distributed runs the PPM runtime; use -model ppm"))
		}
		// Forward the app and ablation selection verbatim to every node
		// process; ppm-node resolves them into the same Params this
		// binary would use, so the two paths stay comparable.
		args := []string{
			"-app", *app,
			"-cores", strconv.Itoa(*cores),
			"-cg-grid", *cgGrid, "-cg-iters", strconv.Itoa(*cgIters),
			"-colloc-levels", strconv.Itoa(*collocLevels), "-colloc-m0", strconv.Itoa(*collocM0),
			"-bh-n", strconv.Itoa(*bhN), "-bh-steps", strconv.Itoa(*bhSteps),
			"-jacobi-grid", *jacGrid, "-jacobi-sweeps", strconv.Itoa(*jacSweeps),
			"-search-n", strconv.Itoa(*searchN), "-search-k", strconv.Itoa(*searchK),
		}
		for _, f := range []struct {
			on   bool
			name string
		}{{*noBundling, "-no-bundling"}, {*noOverlap, "-no-overlap"}, {*noReadCache, "-no-readcache"}, {*static, "-static"},
			{*bundleAdaptive, "-bundle-adaptive"}} {
			if f.on {
				args = append(args, f.name)
			}
		}
		if *wireCodec != "" {
			args = append(args, "-wire-codec", *wireCodec)
		}
		for _, d := range []struct {
			v    time.Duration
			name string
		}{{*hbInterval, "-hb-interval"}, {*hbTimeout, "-hb-timeout"}, {*opTimeout, "-op-timeout"},
			{*flushStagger, "-flush-stagger"}, {*timeout, "-job-deadline"}} {
			if d.v != 0 {
				args = append(args, d.name, d.v.String())
			}
		}
		runDistributed(*app, *nodes, *nodeBin, args, launchCfg{
			maxRestarts: *maxRestarts, ckptDir: *ckptDir, ckptEvery: *ckptEvery,
			perRankRestarts: *perRankRestarts, minNodes: *minNodes,
		}, distParams{
			cgGrid: *cgGrid, cgIters: *cgIters,
			collocLevels: *collocLevels, collocM0: *collocM0,
			bhN: *bhN, bhSteps: *bhSteps,
			jacGrid: *jacGrid, jacSweeps: *jacSweeps,
			searchN: *searchN, searchK: *searchK,
		})
		return
	}

	mach := machine.Franklin()
	mach.SmartMap = *smartMap
	popt := core.Options{
		Nodes:          *nodes,
		CoresPerNode:   *cores,
		Machine:        mach,
		NoBundling:     *noBundling,
		NoOverlap:      *noOverlap,
		NoReadCache:    *noReadCache,
		StaticSchedule: *static,
		Parallel:       *parallel,
	}
	var collector *trace.Collector
	if *timeline {
		collector = trace.NewCollector()
		popt.Observer = collector.Observer()
		defer func() {
			fmt.Println()
			fmt.Print(collector.Summarize())
			fmt.Print(collector.Timeline(72))
		}()
	}

	switch *app {
	case "cg":
		var nx, ny, nz int
		if _, err := fmt.Sscanf(*cgGrid, "%dx%dx%d", &nx, &ny, &nz); err != nil {
			log.Fatalf("bad -cg-grid %q", *cgGrid)
		}
		prm := cg.Params{NX: nx, NY: ny, NZ: nz, MaxIter: *cgIters, Tol: 0}
		if *model == "mpi" {
			res, rep, err := cg.RunMPI(cg.MPIOptions{Nodes: *nodes, CoresPerNode: *cores, Machine: mach, Parallel: *parallel}, prm)
			exitOn(err)
			fmt.Printf("cg/mpi: %d iterations, residual %.3e\n%v\n", res.Iters, res.Residual, rep)
			return
		}
		res, rep, err := cg.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("cg/ppm: %d iterations, residual %.3e\n%v\n", res.Iters, res.Residual, rep)

	case "colloc":
		prm := colloc.Params{Levels: *collocLevels, M0: *collocM0, Delta: 3}
		if *model == "mpi" {
			m, rep, err := colloc.RunMPI(colloc.MPIOptions{Nodes: *nodes, CoresPerNode: *cores, Machine: mach, Parallel: *parallel}, prm)
			exitOn(err)
			fmt.Printf("colloc/mpi: %d x %d matrix, %d nonzeros\n%v\n", m.N, m.N, m.NNZ(), rep)
			return
		}
		m, rep, err := colloc.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("colloc/ppm: %d x %d matrix, %d nonzeros\n%v\n", m.N, m.N, m.NNZ(), rep)

	case "nbody":
		prm := nbody.Params{N: *bhN, Steps: *bhSteps, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42}
		if *model == "mpi" {
			_, rep, err := nbody.RunMPI(nbody.MPIOptions{Nodes: *nodes, CoresPerNode: *cores, Machine: mach, Parallel: *parallel}, prm)
			exitOn(err)
			fmt.Printf("nbody/mpi: %d bodies, %d steps\n%v\n", prm.N, prm.Steps, rep)
			return
		}
		_, rep, err := nbody.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("nbody/ppm: %d bodies, %d steps\n%v\n", prm.N, prm.Steps, rep)

	case "jacobi":
		var nx, ny, nz int
		if _, err := fmt.Sscanf(*jacGrid, "%dx%dx%d", &nx, &ny, &nz); err != nil {
			log.Fatalf("bad -jacobi-grid %q", *jacGrid)
		}
		prm := jacobi.Params{NX: nx, NY: ny, NZ: nz, Sweeps: *jacSweeps}
		if *model == "mpi" {
			_, rep, err := jacobi.RunMPI(jacobi.MPIOptions{Nodes: *nodes, CoresPerNode: *cores, Machine: mach, Parallel: *parallel}, prm)
			exitOn(err)
			fmt.Printf("jacobi/mpi: %dx%dx%d grid, %d sweeps\n%v\n", nx, ny, nz, prm.Sweeps, rep)
			return
		}
		_, rep, err := jacobi.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("jacobi/ppm: %dx%dx%d grid, %d sweeps\n%v\n", nx, ny, nz, prm.Sweeps, rep)

	case "search":
		if *model == "mpi" {
			log.Fatal("search has no message-passing variant (it is the paper's PPM code example)")
		}
		prm := search.Params{N: *searchN, K: *searchK, Seed: 42}
		_, rep, err := search.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("search/ppm: %d keys/node in array of %d\n%v\n", prm.K, prm.N, rep)

	default:
		fmt.Fprintf(os.Stderr, "ppm-run: unknown -app %q (want cg, colloc, nbody, jacobi, search)\n", *app)
		os.Exit(2)
	}
}

// distParams carries the app-parameter flags into the distributed path so
// the launcher can rebuild the same AppSpec the node processes use.
type distParams struct {
	cgGrid       string
	cgIters      int
	collocLevels int
	collocM0     int
	bhN          int
	bhSteps      int
	jacGrid      string
	jacSweeps    int
	searchN      int
	searchK      int
}

// spec resolves the flags into the AppSpec ppm-node will derive from the
// same arguments (Merge needs it to reassemble fragments).
func (d distParams) spec(app string) (dist.AppSpec, error) {
	spec := dist.AppSpec{App: app}
	parseGrid := func(flagName, s string) (nx, ny, nz int, err error) {
		if _, err = fmt.Sscanf(s, "%dx%dx%d", &nx, &ny, &nz); err != nil {
			err = fmt.Errorf("bad %s %q", flagName, s)
		}
		return
	}
	switch app {
	case "cg":
		nx, ny, nz, err := parseGrid("-cg-grid", d.cgGrid)
		if err != nil {
			return spec, err
		}
		spec.CG = cg.Params{NX: nx, NY: ny, NZ: nz, MaxIter: d.cgIters, Tol: 0}
	case "colloc":
		spec.Colloc = colloc.Params{Levels: d.collocLevels, M0: d.collocM0, Delta: 3}
	case "nbody":
		spec.Nbody = nbody.Params{N: d.bhN, Steps: d.bhSteps, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42}
	case "jacobi":
		nx, ny, nz, err := parseGrid("-jacobi-grid", d.jacGrid)
		if err != nil {
			return spec, err
		}
		spec.Jacobi = jacobi.Params{NX: nx, NY: ny, NZ: nz, Sweeps: d.jacSweeps}
	case "search":
		spec.Search = search.Params{N: d.searchN, K: d.searchK, Seed: 42}
	default:
		return spec, fmt.Errorf("unknown -app %q (want cg, colloc, nbody, jacobi, search)", app)
	}
	return spec, nil
}

// findNodeBin locates the ppm-node binary: an explicit -node-bin wins,
// then a sibling of this executable, then $PATH.
func findNodeBin(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "ppm-node")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("ppm-node"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("ppm-node binary not found (build it with `go build ./cmd/ppm-node` and pass -node-bin, or put it next to ppm-run)")
}

// launchCfg carries the supervision flags into the distributed path.
type launchCfg struct {
	maxRestarts     int
	ckptDir         string
	ckptEvery       int
	perRankRestarts int
	minNodes        int
}

// launchOpts builds the shared supervision options, including the
// elastic-rescale callbacks that narrate restarts and shrinks.
func (lc launchCfg) launchOpts() dist.LaunchOpts {
	return dist.LaunchOpts{
		MaxRestarts: lc.maxRestarts, CheckpointDir: lc.ckptDir, CheckpointEvery: lc.ckptEvery,
		PerRankRestarts: lc.perRankRestarts, MinNodes: lc.minNodes,
		OnRestart: func(attempt int, cause error) {
			fmt.Fprintf(os.Stderr, "ppm-run: supervisor: relaunching fleet (attempt %d) after: %v\n", attempt, cause)
		},
		OnRescale: func(procs int, cause error) {
			fmt.Fprintf(os.Stderr, "ppm-run: supervisor: host permanently dead; rescaling fleet to %d host processes after: %v\n", procs, cause)
		},
	}
}

// runDistributed forks one ppm-node per node over loopback TCP, merges
// the per-rank results, and prints the same summary the simulator path
// would. With -max-restarts the launcher supervises: a failed fleet is
// relaunched (resuming from -checkpoint-dir when set) until an attempt
// succeeds or the budget is spent.
func runDistributed(app string, nodes int, nodeBin string, nodeArgs []string, lc launchCfg, d distParams) {
	spec, err := d.spec(app)
	exitOn(err)
	bin, err := findNodeBin(nodeBin)
	exitOn(err)
	lo := lc.launchOpts()
	lo.Nodes, lo.NodeBin, lo.NodeArgs = nodes, bin, nodeArgs
	results, err := dist.LaunchLocal(lo)
	exitOn(err)
	m, err := dist.Merge(spec, results)
	exitOn(err)
	rep := &core.Report{PerNode: m.PerNode, Totals: m.Totals}
	switch app {
	case "cg":
		fmt.Printf("cg/ppm-dist: %d iterations, residual %.3e\n%v\n", m.CG.Iters, m.CG.Residual, rep)
	case "colloc":
		fmt.Printf("colloc/ppm-dist: %d x %d matrix, %d nonzeros\n%v\n", m.Colloc.N, m.Colloc.N, m.Colloc.NNZ(), rep)
	case "nbody":
		fmt.Printf("nbody/ppm-dist: %d bodies, %d steps\n%v\n", spec.Nbody.N, spec.Nbody.Steps, rep)
	case "jacobi":
		fmt.Printf("jacobi/ppm-dist: %dx%dx%d grid, %d sweeps\n%v\n",
			spec.Jacobi.NX, spec.Jacobi.NY, spec.Jacobi.NZ, spec.Jacobi.Sweeps, rep)
	case "search":
		fmt.Printf("search/ppm-dist: %d keys/node in array of %d\n%v\n", spec.Search.K, spec.Search.N, rep)
	}
}

// runSpec executes a jobspec file: sim and parallel backends run
// in-process, the dist backend launches a loopback fleet whose nodes run
// the same spec via -spec-json. The flattened result prints as one JSON
// line with -json (the server and the equivalence harness diff that
// form), else as the usual human summary. A -timeout without a spec
// deadline becomes the job's deadline_ms, so distributed overruns tear
// the fleet down with the rank and in-flight operation named.
func runSpec(path string, jsonOut bool, nodeBin string, lc launchCfg, timeout time.Duration) {
	data, err := os.ReadFile(path)
	exitOn(err)
	var s jobspec.Spec
	if err := json.Unmarshal(data, &s); err != nil {
		exitOn(fmt.Errorf("parsing -spec %s: %v", path, err))
	}
	s.Normalize()
	exitOn(s.Validate())
	if timeout > 0 && s.DeadlineMS == 0 {
		s.DeadlineMS = timeout.Milliseconds()
	}
	var res *jobspec.Result
	if s.Backend == jobspec.BackendDist {
		bin, err := findNodeBin(nodeBin)
		exitOn(err)
		payload, err := json.Marshal(&s)
		exitOn(err)
		lo := lc.launchOpts()
		lo.Nodes, lo.NodeBin = s.Nodes, bin
		lo.NodeArgs = []string{"-spec-json", string(payload)}
		results, err := dist.LaunchLocal(lo)
		exitOn(err)
		m, err := dist.Merge(s.AppSpec(), results)
		exitOn(err)
		res, err = jobspec.FromMerged(&s, m)
		exitOn(err)
	} else {
		if timeout > 0 {
			time.AfterFunc(timeout, func() {
				fmt.Fprintf(os.Stderr, "ppm-run: run exceeded -timeout %v\n", timeout)
				os.Exit(1)
			})
		}
		res, err = jobspec.RunLocal(&s)
		exitOn(err)
	}
	if jsonOut {
		out, err := json.Marshal(res)
		exitOn(err)
		fmt.Println(string(out))
		return
	}
	fmt.Printf("%s [job %s]\n%v\n", res.Summary, res.Hash, &core.Report{PerNode: res.PerNode, Totals: res.Totals})
}

// exitOn reports a failed run on stderr — including the scheduler's full
// multi-line per-process deadlock diagnostics, which arrive embedded in
// the error — and exits non-zero. Every run path funnels through it, so
// a hang or crash is always attributable and never exits 0.
func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppm-run: run failed: %v\n", err)
		os.Exit(1)
	}
}
