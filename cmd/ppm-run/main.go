// Command ppm-run executes a single application run — one app, one
// programming model, one cluster shape — and prints the result summary
// and the modeled run report. It is the quickest way to poke at the
// simulator interactively.
//
// Usage:
//
//	ppm-run -app cg|colloc|nbody|search [-model ppm|mpi] [-nodes 8] [-cores 4]
//	        [-no-bundling] [-no-overlap] [-no-readcache] [-static] [-smartmap]
//	        [-parallel] [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	        [app-specific flags, see -h]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/search"
	"ppm/internal/core"
	"ppm/internal/machine"
	"ppm/internal/trace"
)

// startProfiles arms the optional pprof outputs and returns the function
// that finalizes them (stops the CPU profile, snapshots the heap).
func startProfiles(cpu, mem string) func() {
	var stopCPU func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		if stopCPU != nil {
			stopCPU()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppm-run: ")

	app := flag.String("app", "cg", "application: cg, colloc, nbody, search")
	model := flag.String("model", "ppm", "programming model: ppm or mpi")
	nodes := flag.Int("nodes", 8, "cluster nodes")
	cores := flag.Int("cores", 4, "cores per node")
	noBundling := flag.Bool("no-bundling", false, "disable remote-access bundling (PPM)")
	noOverlap := flag.Bool("no-overlap", false, "disable comm/compute overlap (PPM)")
	noReadCache := flag.Bool("no-readcache", false, "disable the node-level read cache (PPM)")
	static := flag.Bool("static", false, "static VP-to-core schedule (PPM)")
	smartMap := flag.Bool("smartmap", false, "enable SmartMap-style intra-node MPI optimization")
	timeline := flag.Bool("timeline", false, "print a communication summary and per-rank timeline (PPM runs)")
	parallel := flag.Bool("parallel", false, "run the simulator on the parallel host scheduler (bit-identical results)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")

	cgGrid := flag.String("cg-grid", "24x24x48", "cg: grid NXxNYxNZ")
	cgIters := flag.Int("cg-iters", 20, "cg: iterations (tol=0)")
	collocLevels := flag.Int("colloc-levels", 7, "colloc: levels")
	collocM0 := flag.Int("colloc-m0", 12, "colloc: level-0 basis count")
	bhN := flag.Int("bh-n", 3000, "nbody: bodies")
	bhSteps := flag.Int("bh-steps", 2, "nbody: steps")
	searchN := flag.Int("search-n", 1<<20, "search: sorted array length")
	searchK := flag.Int("search-k", 1<<14, "search: keys per node")
	flag.Parse()

	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()

	mach := machine.Franklin()
	mach.SmartMap = *smartMap
	popt := core.Options{
		Nodes:          *nodes,
		CoresPerNode:   *cores,
		Machine:        mach,
		NoBundling:     *noBundling,
		NoOverlap:      *noOverlap,
		NoReadCache:    *noReadCache,
		StaticSchedule: *static,
		Parallel:       *parallel,
	}
	var collector *trace.Collector
	if *timeline {
		collector = trace.NewCollector()
		popt.Observer = collector.Observer()
		defer func() {
			fmt.Println()
			fmt.Print(collector.Summarize())
			fmt.Print(collector.Timeline(72))
		}()
	}

	switch *app {
	case "cg":
		var nx, ny, nz int
		if _, err := fmt.Sscanf(*cgGrid, "%dx%dx%d", &nx, &ny, &nz); err != nil {
			log.Fatalf("bad -cg-grid %q", *cgGrid)
		}
		prm := cg.Params{NX: nx, NY: ny, NZ: nz, MaxIter: *cgIters, Tol: 0}
		if *model == "mpi" {
			res, rep, err := cg.RunMPI(cg.MPIOptions{Nodes: *nodes, CoresPerNode: *cores, Machine: mach, Parallel: *parallel}, prm)
			exitOn(err)
			fmt.Printf("cg/mpi: %d iterations, residual %.3e\n%v\n", res.Iters, res.Residual, rep)
			return
		}
		res, rep, err := cg.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("cg/ppm: %d iterations, residual %.3e\n%v\n", res.Iters, res.Residual, rep)

	case "colloc":
		prm := colloc.Params{Levels: *collocLevels, M0: *collocM0, Delta: 3}
		if *model == "mpi" {
			m, rep, err := colloc.RunMPI(colloc.MPIOptions{Nodes: *nodes, CoresPerNode: *cores, Machine: mach, Parallel: *parallel}, prm)
			exitOn(err)
			fmt.Printf("colloc/mpi: %d x %d matrix, %d nonzeros\n%v\n", m.N, m.N, m.NNZ(), rep)
			return
		}
		m, rep, err := colloc.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("colloc/ppm: %d x %d matrix, %d nonzeros\n%v\n", m.N, m.N, m.NNZ(), rep)

	case "nbody":
		prm := nbody.Params{N: *bhN, Steps: *bhSteps, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42}
		if *model == "mpi" {
			_, rep, err := nbody.RunMPI(nbody.MPIOptions{Nodes: *nodes, CoresPerNode: *cores, Machine: mach, Parallel: *parallel}, prm)
			exitOn(err)
			fmt.Printf("nbody/mpi: %d bodies, %d steps\n%v\n", prm.N, prm.Steps, rep)
			return
		}
		_, rep, err := nbody.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("nbody/ppm: %d bodies, %d steps\n%v\n", prm.N, prm.Steps, rep)

	case "search":
		if *model == "mpi" {
			log.Fatal("search has no message-passing variant (it is the paper's PPM code example)")
		}
		prm := search.Params{N: *searchN, K: *searchK, Seed: 42}
		_, rep, err := search.RunPPM(popt, prm)
		exitOn(err)
		fmt.Printf("search/ppm: %d keys/node in array of %d\n%v\n", prm.K, prm.N, rep)

	default:
		fmt.Fprintf(os.Stderr, "ppm-run: unknown -app %q (want cg, colloc, nbody, search)\n", *app)
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
