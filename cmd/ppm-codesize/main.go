// Command ppm-codesize regenerates the paper's Table 1: source-line
// counts of each application's PPM program versus its message-passing
// program, measured over this repository's own sources with the usual
// convention (non-blank, non-comment lines).
//
// Usage:
//
//	ppm-codesize [-root <repo root>]
package main

import (
	"flag"
	"fmt"
	"log"

	"ppm/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppm-codesize: ")
	root := flag.String("root", ".", "repository root (or any directory inside it)")
	flag.Parse()

	dir, err := bench.RepoRoot(*root)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := bench.Table1CodeSizes(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.Table1String(rows))
	fmt.Println()
	fmt.Println("Paper's Table 1 (C sources, for comparison):")
	fmt.Println("  Conjugate Gradient    161 (PPM)   733 (MPI)")
	fmt.Println("  Matrix Generation     424 (PPM)   744 (MPI)")
	fmt.Println("  Barnes Hut            499 (PPM)   N/A")
}
