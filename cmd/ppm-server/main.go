// Command ppm-server is the PPM job server: a long-lived HTTP/JSON
// control plane that accepts concurrent job submissions, runs each on
// the simulator or on a pooled warm fleet of serve-mode ppm-node
// processes, and caches results by canonical spec hash so identical
// resubmissions return bit-identical output without running anything.
//
// Usage:
//
//	ppm-server [-addr 127.0.0.1:8765] [-node-bin path/to/ppm-node]
//	           [-max-queue 64] [-tenant-quota 8] [-workers 2]
//	           [-idle-timeout 2m] [-drain-timeout 30s]
//	           [-job-retries 2] [-retry-backoff 200ms]
//
// Endpoints:
//
//	POST /v1/jobs              submit {tenant, priority, no_cache, spec}
//	GET  /v1/jobs/{id}         status, queue position, result when done
//	GET  /v1/jobs/{id}/stream  phase-progress server-sent events
//	GET  /v1/results/{hash}    cached result by canonical spec hash
//	GET  /metrics              queue/cache/fleet counters as JSON
//
// SIGINT/SIGTERM drain: the listener closes, admitted jobs finish, warm
// fleets retire. A clean drain exits 0; a drain that exceeds
// -drain-timeout exits 1 — distinct codes, so a supervisor can tell an
// operator stop from a crash.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ppm/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "HTTP listen address")
	nodeBin := flag.String("node-bin", "", "serve-mode ppm-node binary for dist jobs (default: next to this binary)")
	maxQueue := flag.Int("max-queue", 64, "maximum queued jobs across all tenants")
	tenantQuota := flag.Int("tenant-quota", 8, "maximum queued+running jobs per tenant (-1 unlimited)")
	workers := flag.Int("workers", 2, "jobs run concurrently")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "retire warm fleets idle this long")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain bound")
	jobRetries := flag.Int("job-retries", 2, "resubmit a dist job whose fleet died up to this many times (-1 never)")
	retryBackoff := flag.Duration("retry-backoff", 200*time.Millisecond, "base of the exponential job-retry backoff")
	flag.Parse()

	bin := *nodeBin
	if bin == "" {
		if self, err := os.Executable(); err == nil {
			sibling := filepath.Join(filepath.Dir(self), "ppm-node")
			if _, err := os.Stat(sibling); err == nil {
				bin = sibling
			}
		}
	}
	s := server.New(server.Config{
		Addr:          *addr,
		NodeBin:       bin,
		MaxQueue:      *maxQueue,
		TenantQuota:   *tenantQuota,
		Workers:       *workers,
		IdleTimeout:   *idleTimeout,
		MaxJobRetries: *jobRetries,
		RetryBackoff:  *retryBackoff,
	})
	if err := s.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "ppm-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ppm-server: listening on %s\n", s.Addr())
	if bin == "" {
		fmt.Fprintln(os.Stderr, "ppm-server: no ppm-node binary found; dist jobs will be rejected (-node-bin)")
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Fprintf(os.Stderr, "ppm-server: %v: draining\n", sig)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ppm-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "ppm-server: drained")
}
