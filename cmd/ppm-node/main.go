// Command ppm-node is one node process of a distributed PPM run. It is
// normally forked by `ppm-run -distributed`, which assigns ranks, points
// every process at a shared rendezvous directory, and collects results —
// but it can be started by hand (or by a process manager across real
// machines, with -listen and a shared -rendezvous path on a network
// filesystem).
//
// The process connects to its peers over TCP, runs its share of the
// selected application under the distributed runtime, and prints a
// single-line JSON NodeResult on stdout: its runtime counters plus its
// fragment of the application output. Any failure is reported both in
// that JSON (so the launcher can attribute it to a rank) and on stderr,
// with a non-zero exit.
//
// Usage:
//
//	ppm-node -rank R -nodes N -rendezvous DIR [-listen 127.0.0.1:0]
//	         [-procs P -proc J [-restore-rescale]]
//	         [-run-id ID] [-hb-interval 500ms] [-hb-timeout 5s]
//	         [-op-timeout 60s] [-checkpoint-dir DIR [-checkpoint-every K] [-restore]]
//	         [-bundle-adaptive] [-wire-codec raw|delta] [-flush-stagger 0]
//	         -app cg|colloc|nbody|jacobi|search|scatter [-cores 4]
//	         [-no-bundling] [-no-overlap] [-no-readcache] [-static]
//	         [app-specific flags, see -h]
//
// A silent or crashed peer is detected by the engine's heartbeat/deadline
// machinery and aborts the run with an error naming the rank, rather than
// hanging. The PPM_FAULT environment variable injects deterministic
// faults for chaos testing (see internal/faultinject).
//
// Elastic hosting: with -procs P (< -nodes N) and -proc J, this process
// hosts the block of logical ranks partition.NewBlock(N, P).Range(J) —
// one engine, fault plan, and result line per hosted rank, with -rank
// naming the first of them. The logical N-rank mesh is unchanged (some
// links are loopback), so results are bit-identical to native hosting;
// -restore-rescale additionally restores each hosted rank's own
// checkpoint from a full fleet's set, which is how the supervisor
// finishes a run after permanently losing a host.
//
// Two spec-driven modes complement the flag-driven one-shot run:
//
//   - -spec-json JSON runs a single jobspec.Spec (app, params, preset,
//     ablations) instead of the app flags; ppm-run -spec uses it.
//   - -serve turns the process into a long-lived worker: it reads
//     jobspec.NodeJob lines from stdin, runs each under the shared
//     engine with a keyed plan-cache session, and writes
//     jobspec.NodeReply lines to stdout (rank 0 also streams phase
//     progress). EOF on stdin drains and exits 0; ppm-server's fleet
//     pool speaks this protocol.
//
// SIGINT/SIGTERM request an operator stop: the process finishes (or
// aborts) the job in flight and exits with dist.StopExitCode so the
// supervisor knows not to count the stop as a crash.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/scatter"
	"ppm/internal/apps/search"
	"ppm/internal/core"
	"ppm/internal/dist"
	"ppm/internal/faultinject"
	"ppm/internal/jobspec"
	"ppm/internal/machine"
	"ppm/internal/partition"
	"ppm/internal/wire"
)

func main() {
	rank := flag.Int("rank", -1, "this process's node id in [0, nodes)")
	nodes := flag.Int("nodes", 0, "total node processes in the run")
	rendezvous := flag.String("rendezvous", "", "shared directory where peers publish their listen addresses")
	listen := flag.String("listen", "", "TCP listen address (default 127.0.0.1:0)")
	connectTimeout := flag.Duration("connect-timeout", 30*time.Second, "deadline for the full mesh to come up")
	bundleBytes := flag.Int("bundle-bytes", 0, "wire-level bundle coalescing threshold in bytes (default 8192)")
	bundleAdaptive := flag.Bool("bundle-adaptive", false, "adaptive bundling: flush critical-path frames immediately, grow the cap under sustained commit throughput")
	wireCodec := flag.String("wire-codec", "raw", "commit-stream encoding to offer peers: raw or delta")
	flushStagger := flag.Duration("flush-stagger", 0, "minimum spacing between this process's per-peer flushes (0 disables NIC-contention pacing)")
	runID := flag.String("run-id", "", "launch identity tag; rendezvous files from other launches are ignored")
	hbInterval := flag.Duration("hb-interval", 0, "failure-detector probe interval on idle links (default 500ms, negative disables)")
	hbTimeout := flag.Duration("hb-timeout", 0, "declare a silent peer dead after this long (default 5s, negative disables)")
	opTimeout := flag.Duration("op-timeout", 0, "deadline for one remote read or commit wait (default 60s, negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 0, "shutdown bye-exchange drain bound (default 10s)")
	ckptDir := flag.String("checkpoint-dir", "", "write phase-boundary checkpoints into this directory")
	ckptEvery := flag.Int("checkpoint-every", 0, "minimum committed global phases between checkpoints (default 1)")
	restore := flag.Bool("restore", false, "resume from the newest checkpoint all ranks hold in -checkpoint-dir")
	procs := flag.Int("procs", 0, "host processes in the fleet (default nodes; fewer procs host several logical ranks each)")
	proc := flag.Int("proc", -1, "this process's host index in [0, procs) (default rank)")
	restoreRescale := flag.Bool("restore-rescale", false, "restore the full fleet's checkpoints into this rescaled hosting (implies -restore)")

	serve := flag.Bool("serve", false, "serve mode: run jobspec jobs from stdin until EOF or an operator stop")
	specJSON := flag.String("spec-json", "", "run one job described by this jobspec JSON instead of the app flags")
	jobDeadline := flag.Duration("job-deadline", 0, "abort the run if it exceeds this wall-clock bound (0 disables)")

	app := flag.String("app", "cg", "application: cg, colloc, nbody, jacobi, search, scatter")
	cores := flag.Int("cores", 4, "cores per node (VP scheduling width)")
	noBundling := flag.Bool("no-bundling", false, "disable remote-access bundling counters")
	noOverlap := flag.Bool("no-overlap", false, "disable comm/compute overlap counters")
	noReadCache := flag.Bool("no-readcache", false, "disable the node-level read cache")
	static := flag.Bool("static", false, "static VP-to-core schedule")

	cgGrid := flag.String("cg-grid", "24x24x48", "cg: grid NXxNYxNZ")
	cgIters := flag.Int("cg-iters", 20, "cg: iterations (tol=0)")
	collocLevels := flag.Int("colloc-levels", 7, "colloc: levels")
	collocM0 := flag.Int("colloc-m0", 12, "colloc: level-0 basis count")
	bhN := flag.Int("bh-n", 3000, "nbody: bodies")
	bhSteps := flag.Int("bh-steps", 2, "nbody: steps")
	jacGrid := flag.String("jacobi-grid", "24x24x48", "jacobi: grid NXxNYxNZ")
	jacSweeps := flag.Int("jacobi-sweeps", 10, "jacobi: sweeps")
	searchN := flag.Int("search-n", 1<<20, "search: sorted array length")
	searchK := flag.Int("search-k", 1<<14, "search: keys per node")
	scatterN := flag.Int("scatter-n", 3000, "scatter: global accumulator length")
	scatterVPs := flag.Int("scatter-vps", 6, "scatter: virtual processors per node")
	scatterIters := flag.Int("scatter-iters", 4, "scatter: scatter-add phases")
	scatterSeed := flag.Uint64("scatter-seed", 7, "scatter: workload seed")
	flag.Parse()

	fail := func(err error) {
		out, _ := json.Marshal(dist.NodeResult{Rank: *rank, Err: err.Error()})
		fmt.Println(string(out))
		fmt.Fprintf(os.Stderr, "ppm-node[%d]: %v\n", *rank, err)
		os.Exit(1)
	}

	if *nodes <= 0 || *rank < 0 || *rank >= *nodes {
		fail(fmt.Errorf("need -rank in [0, nodes) and -nodes > 0, got rank=%d nodes=%d", *rank, *nodes))
	}
	// Elastic hosting: a fleet of -nodes logical ranks squeezed onto
	// -procs host processes, block-partitioned so host J runs ranks
	// NewBlock(nodes, procs).Range(J). Native 1:1 hosting is the
	// degenerate case procs == nodes, proc == rank.
	if *procs <= 0 {
		*procs = *nodes
	}
	if *proc < 0 {
		*proc = *rank
	}
	if *procs > *nodes || *proc >= *procs {
		fail(fmt.Errorf("need -proc in [0, procs) and -procs in [1, nodes], got proc=%d procs=%d nodes=%d", *proc, *procs, *nodes))
	}
	hostLo, hostHi := partition.NewBlock(*nodes, *procs).Range(*proc)
	if *rank != hostLo {
		fail(fmt.Errorf("-rank %d is not host %d's first hosted rank (%d)", *rank, *proc, hostLo))
	}
	hostedRanks := make([]int, 0, hostHi-hostLo)
	for r := hostLo; r < hostHi; r++ {
		hostedRanks = append(hostedRanks, r)
	}
	if *restoreRescale {
		*restore = true
	}
	spec := dist.AppSpec{App: *app}
	switch *app {
	case "cg":
		var nx, ny, nz int
		if _, err := fmt.Sscanf(*cgGrid, "%dx%dx%d", &nx, &ny, &nz); err != nil {
			fail(fmt.Errorf("bad -cg-grid %q", *cgGrid))
		}
		spec.CG = cg.Params{NX: nx, NY: ny, NZ: nz, MaxIter: *cgIters, Tol: 0}
	case "colloc":
		spec.Colloc = colloc.Params{Levels: *collocLevels, M0: *collocM0, Delta: 3}
	case "nbody":
		spec.Nbody = nbody.Params{N: *bhN, Steps: *bhSteps, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42}
	case "jacobi":
		var nx, ny, nz int
		if _, err := fmt.Sscanf(*jacGrid, "%dx%dx%d", &nx, &ny, &nz); err != nil {
			fail(fmt.Errorf("bad -jacobi-grid %q", *jacGrid))
		}
		spec.Jacobi = jacobi.Params{NX: nx, NY: ny, NZ: nz, Sweeps: *jacSweeps}
	case "search":
		spec.Search = search.Params{N: *searchN, K: *searchK, Seed: 42}
	case "scatter":
		spec.Scatter = scatter.Params{N: *scatterN, VPs: *scatterVPs, Iters: *scatterIters, Seed: *scatterSeed}
	default:
		fail(fmt.Errorf("unknown -app %q (want cg, colloc, nbody, jacobi, search, scatter)", *app))
	}
	opt := core.Options{
		Nodes:          *nodes,
		CoresPerNode:   *cores,
		Machine:        machine.Franklin(),
		NoBundling:     *noBundling,
		NoOverlap:      *noOverlap,
		NoReadCache:    *noReadCache,
		StaticSchedule: *static,
	}
	if *specJSON != "" {
		var js jobspec.Spec
		if err := json.Unmarshal([]byte(*specJSON), &js); err != nil {
			fail(fmt.Errorf("-spec-json: %v", err))
		}
		js.Normalize()
		if err := js.Validate(); err != nil {
			fail(err)
		}
		if js.Nodes != *nodes {
			fail(fmt.Errorf("-spec-json wants %d nodes but this fleet has %d", js.Nodes, *nodes))
		}
		spec = js.AppSpec()
		opt = js.Options()
		// The node always runs the distributed runtime, whatever backend
		// the spec names for local execution.
		opt.Parallel = false
		if *jobDeadline == 0 && js.DeadlineMS > 0 {
			*jobDeadline = time.Duration(js.DeadlineMS) * time.Millisecond
		}
	}
	if *ckptDir != "" {
		cc := &core.CheckpointConfig{Dir: *ckptDir, EveryPhases: *ckptEvery, Restore: *restore}
		if *procs < *nodes {
			cc.HostProcs = *procs
			cc.HostProc = *proc
		}
		opt.Checkpoint = cc
	}

	codec, err := wire.ParseCodec(*wireCodec)
	if err != nil {
		fail(fmt.Errorf("-wire-codec: %v", err))
	}

	// Connect every hosted rank's engine concurrently: mesh formation
	// needs all N listeners up, including the ones that live in this
	// process. Each rank gets its own fault plan (PPM_FAULT carries the
	// spec, PPM_FAULT_ATTEMPT the supervisor's relaunch count; killhost=
	// items key on this process's -proc index).
	engs := make([]*dist.Engine, len(hostedRanks))
	{
		connErrs := make([]error, len(hostedRanks))
		var wg sync.WaitGroup
		for i, r := range hostedRanks {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				plan, err := faultinject.FromEnvHost(r, *proc)
				if err != nil {
					connErrs[i] = err
					return
				}
				engs[i], connErrs[i] = dist.Connect(dist.Config{
					Rank:              r,
					Nodes:             *nodes,
					RendezvousDir:     *rendezvous,
					ListenAddr:        *listen,
					BundleBytes:       *bundleBytes,
					BundleAdaptive:    *bundleAdaptive,
					Codec:             codec,
					FlushStagger:      *flushStagger,
					ConnectTimeout:    *connectTimeout,
					RunID:             *runID,
					HeartbeatInterval: *hbInterval,
					HeartbeatTimeout:  *hbTimeout,
					OpTimeout:         *opTimeout,
					DrainTimeout:      *drainTimeout,
					Faults:            plan,
				})
			}(i, r)
		}
		wg.Wait()
		for _, err := range connErrs {
			if err != nil {
				fail(err)
			}
		}
	}

	if *serve {
		serveJobs(engs, hostedRanks, *nodes)
		return // unreachable; serveJobs exits
	}

	// One-shot run. An operator signal aborts every hosted engine (so
	// every rank unblocks with an error naming the stop) and turns the
	// exit status into StopExitCode so the supervisor does not spend a
	// restart on it.
	var stopReq atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		stopReq.Store(true)
		for _, eng := range engs {
			eng.Abort(fmt.Errorf("operator stop (%v)", s))
		}
	}()
	results := make([]*dist.NodeResult, len(hostedRanks))
	var wg sync.WaitGroup
	for i := range hostedRanks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := engs[i]
			cancelDeadline := eng.StartJobDeadline(*jobDeadline)
			res := dist.RunApp(eng, opt, spec)
			cancelDeadline()
			if err := eng.Close(); err != nil && res.Err == "" {
				res.Err = err.Error()
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	// One NodeResult line per hosted rank, rank order: the supervisor
	// decodes the stream and routes each result by its Rank field.
	failed := false
	for _, res := range results {
		out, err := json.Marshal(res)
		if err != nil {
			fail(fmt.Errorf("encoding result: %v", err))
		}
		fmt.Println(string(out))
		if res.Err != "" {
			fmt.Fprintf(os.Stderr, "ppm-node[%d]: %s\n", res.Rank, res.Err)
			failed = true
		}
	}
	if stopReq.Load() {
		fmt.Fprintf(os.Stderr, "ppm-node[%d]: stopped by operator\n", *rank)
		os.Exit(dist.StopExitCode)
	}
	if failed {
		os.Exit(1)
	}
}

// serveJobs is the long-lived worker loop behind -serve. Jobs arrive as
// jobspec.NodeJob lines on stdin and are run one at a time across every
// engine this process hosts (one per hosted rank); every reply (rank-0
// phase progress and each rank's terminal result) leaves as one
// jobspec.NodeReply line on stdout, routed downstream by Result.Rank.
// Each hosted rank keeps its own WarmSession keyed by the job's
// canonical spec hash, carrying the plan cache and parked VP workers
// across identical submissions so repeat jobs skip the cold start.
// stdin EOF means the operator (the fleet pool) is done with this
// fleet: drain and exit 0. SIGINT/SIGTERM finish the job in flight and
// exit StopExitCode.
func serveJobs(engs []*dist.Engine, ranks []int, nodes int) {
	self := ranks[0]
	enc := json.NewEncoder(os.Stdout)
	var outMu sync.Mutex
	reply := func(r jobspec.NodeReply) {
		outMu.Lock()
		enc.Encode(r)
		outMu.Unlock()
	}

	jobs := make(chan jobspec.NodeJob)
	go func() {
		dec := json.NewDecoder(os.Stdin)
		for {
			var j jobspec.NodeJob
			if err := dec.Decode(&j); err != nil {
				close(jobs)
				return
			}
			jobs <- j
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	sessions := make([]*core.WarmSession, len(engs))
	for i := range sessions {
		sessions[i] = core.NewWarmSession()
	}
	exit := func(code int) {
		for i, eng := range engs {
			sessions[i].Discard()
			if err := eng.Close(); err != nil && code == 0 {
				fmt.Fprintf(os.Stderr, "ppm-node[%d]: close: %v\n", ranks[i], err)
				code = 1
			}
		}
		os.Exit(code)
	}
	for {
		select {
		case <-sigCh:
			fmt.Fprintf(os.Stderr, "ppm-node[%d]: stopped by operator\n", self)
			exit(dist.StopExitCode)
		case j, ok := <-jobs:
			if !ok {
				exit(0) // stdin EOF: orderly drain
			}
			// All hosted ranks run the job together — they are peers in
			// the same phase-synchronized mesh, so they must advance
			// concurrently, not in sequence.
			fatals := make([]bool, len(engs))
			var wg sync.WaitGroup
			for i := range engs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					fatals[i] = runServeJob(engs[i], sessions[i], ranks[i], nodes, j, reply)
				}(i)
			}
			wg.Wait()
			for _, fatal := range fatals {
				if fatal {
					// An engine is (or may be) fatally wounded; every
					// further job would fail. Exit non-zero so the pool
					// discards the fleet.
					fmt.Fprintf(os.Stderr, "ppm-node[%d]: job %s failed; retiring\n", self, j.ID)
					os.Exit(1)
				}
			}
		}
	}
}

// runServeJob runs one queued job and reports whether the fleet must be
// retired. Spec problems are job-local (the engine was never touched);
// run errors are treated as fatal because a distributed abort poisons
// the engine permanently.
func runServeJob(eng *dist.Engine, session *core.WarmSession, rank, nodes int, j jobspec.NodeJob, reply func(jobspec.NodeReply)) (fatal bool) {
	spec := j.Spec
	spec.Normalize()
	err := spec.Validate()
	if err == nil && spec.Nodes != nodes {
		err = fmt.Errorf("job wants %d nodes but this fleet has %d", spec.Nodes, nodes)
	}
	if err != nil {
		reply(jobspec.NodeReply{ID: j.ID, Done: true, Result: &dist.NodeResult{Rank: rank, Err: err.Error()}})
		return false
	}
	opt := spec.Options()
	opt.Parallel = false
	session.SetKey(spec.Hash())
	opt.Warm = session
	if rank == 0 {
		id := j.ID
		opt.OnPhase = func(ph int64) {
			reply(jobspec.NodeReply{ID: id, Phase: ph})
		}
	}
	cancel := eng.StartJobDeadline(time.Duration(spec.DeadlineMS) * time.Millisecond)
	res := dist.RunApp(eng, opt, spec.AppSpec())
	cancel()
	reply(jobspec.NodeReply{ID: j.ID, Done: true, Result: res})
	return res.Err != ""
}
