// Command ppm-figures regenerates the paper's evaluation figures
// (Figures 1-3): application runtime versus node count for the PPM and
// MPI implementations, on the simulated Franklin-like machine.
//
// Usage:
//
//	ppm-figures [-fig 1|2|3|0] [-nodes 1,2,4,8,16,32,64] [-cores 4]
//	            [-csv] [-chart] [-parallel N] [-par-run] [-quiet]
//	            [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	            [-cg-grid 24x24x48] [-cg-iters 20]
//	            [-colloc-levels 7] [-colloc-m0 12]
//	            [-bh-n 3000] [-bh-steps 2]
//
// -fig 0 (default) runs all three figures. The default workload sizes are
// laptop-scale; raise them toward the paper's (see DESIGN.md) if you have
// the patience.
//
// Sweep points run concurrently on a bounded worker pool (-parallel,
// default GOMAXPROCS); -par-run additionally runs each point's simulator
// on the cluster's parallel scheduler. Both are host-time optimizations
// only: the emitted tables are bit-identical for every setting. Progress
// lines stream to stderr as points complete.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/bench"
	"ppm/internal/machine"
)

// startProfiles arms the optional pprof outputs and returns the function
// that finalizes them (stops the CPU profile, snapshots the heap).
func startProfiles(cpu, mem string) func() {
	var stopCPU func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		if stopCPU != nil {
			stopCPU()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
	}
}

func parseNodeList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad node count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseGrid(s string) (nx, ny, nz int, err error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("grid must be NXxNYxNZ, got %q", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		dims[i], err = strconv.Atoi(p)
		if err != nil || dims[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("bad grid dimension %q", p)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppm-figures: ")

	fig := flag.Int("fig", 0, "figure to regenerate (1, 2, 3; 4 = supplementary S1 Jacobi; 0 = all)")
	nodeList := flag.String("nodes", "1,2,4,8,16,32,64", "comma-separated node counts")
	cores := flag.Int("cores", 4, "cores (and MPI ranks) per node")
	emitCSV := flag.Bool("csv", false, "emit CSV instead of tables")
	emitChart := flag.Bool("chart", false, "also emit ASCII charts")
	cgGrid := flag.String("cg-grid", "24x24x48", "Figure 1 grid (chimney: NXxNYxNZ)")
	cgIters := flag.Int("cg-iters", 20, "Figure 1 CG iterations")
	collocLevels := flag.Int("colloc-levels", 7, "Figure 2 multi-scale levels")
	collocM0 := flag.Int("colloc-m0", 12, "Figure 2 level-0 basis count")
	bhN := flag.Int("bh-n", 3000, "Figure 3 body count")
	bhSteps := flag.Int("bh-steps", 2, "Figure 3 time steps")
	parallel := flag.Int("parallel", 0, "concurrent sweep points (0 = GOMAXPROCS, 1 = sequential); results identical for every value")
	parRun := flag.Bool("par-run", false, "run each point's simulator on the parallel scheduler (bit-identical results)")
	quiet := flag.Bool("quiet", false, "suppress per-point progress lines on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()

	nodes, err := parseNodeList(*nodeList)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bench.SweepConfig{
		NodeCounts:   nodes,
		CoresPerNode: *cores,
		Machine:      machine.Franklin(),
		Parallel:     *parallel,
		ParallelRun:  *parRun,
	}
	if !*quiet {
		// Stderr is unbuffered, so each point's line is visible the
		// moment the point completes, even mid-sweep.
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	emit := func(s *bench.Series) {
		if *emitCSV {
			fmt.Printf("# %s: %s\n%s\n", s.Figure, s.Name, s.CSV())
			return
		}
		fmt.Println(s.Table())
		if *emitChart {
			fmt.Println(s.Chart())
		}
		if x := s.CrossoverNodes(); x > 0 {
			fmt.Printf("PPM matches or beats MPI from %d node(s).\n\n", x)
		} else {
			fmt.Printf("PPM does not overtake MPI in this sweep.\n\n")
		}
	}

	run1 := func() {
		nx, ny, nz, err := parseGrid(*cgGrid)
		if err != nil {
			log.Fatal(err)
		}
		s, err := bench.Figure1CG(cfg, cg.Params{NX: nx, NY: ny, NZ: nz, MaxIter: *cgIters, Tol: 0})
		exitOn(err)
		emit(s)
	}
	run2 := func() {
		s, err := bench.Figure2Colloc(cfg, colloc.Params{Levels: *collocLevels, M0: *collocM0, Delta: 3})
		exitOn(err)
		emit(s)
	}
	run3 := func() {
		s, err := bench.Figure3BarnesHut(cfg, nbody.Params{
			N: *bhN, Steps: *bhSteps, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42,
		})
		exitOn(err)
		emit(s)
	}

	runS1 := func() {
		s, err := bench.FigureS1Jacobi(cfg, jacobi.Params{NX: 24, NY: 24, NZ: 48, Sweeps: 10})
		exitOn(err)
		emit(s)
	}

	switch *fig {
	case 0:
		run1()
		run2()
		run3()
		runS1()
	case 1:
		run1()
	case 2:
		run2()
	case 3:
		run3()
	case 4:
		runS1()
	default:
		fmt.Fprintln(os.Stderr, "ppm-figures: -fig must be 0, 1, 2, 3 or 4")
		os.Exit(2)
	}
}

// exitOn reports a failed sweep point on stderr — including the
// scheduler's full multi-line per-process deadlock diagnostics, which
// arrive embedded in the error — and exits non-zero. Every figure's run
// path funnels through it, so a hang in any point is attributable and
// the command never exits 0 after a failure.
func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppm-figures: run failed: %v\n", err)
		os.Exit(1)
	}
}
