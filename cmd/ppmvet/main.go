// Command ppmvet statically checks Go programs that use the ppm API for
// phase-semantics misuse: the rules the runtime enforces dynamically
// (access outside phases, guaranteed strict-mode write conflicts), plus
// hazards it cannot see at all (stale same-phase reads, node-level
// aliases leaking into VP code, discarded run errors).
//
// Usage:
//
//	ppmvet [-json] [-rules list] packages...
//
//	ppmvet ./...                    # check every package
//	ppmvet -json ./internal/apps/...
//	ppmvet -rules phasebound,staleread ./examples/...
//
// Findings print as file:line:col: rule: message and make the exit
// status nonzero. A finding can be suppressed with a //ppmvet:ignore
// [rule...] comment on (or immediately above) the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ppm/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	ruleList := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	listRules := flag.Bool("list", false, "list the available rules and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ppmvet [-json] [-rules list] packages...")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, a := range analysis.Rules() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	rules := analysis.Rules()
	if *ruleList != "" {
		rules = rules[:0]
		for _, name := range strings.Split(*ruleList, ",") {
			a := analysis.RuleByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ppmvet: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			rules = append(rules, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmvet:", err)
		os.Exit(2)
	}

	if *jsonOut {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "ppmvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Printf("%d problem%s\n", len(diags), plural(len(diags)))
		}
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("ok\t%d packages checked\n", len(pkgs))
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
