// Command ppmvet statically checks Go programs that use the ppm API for
// phase-semantics misuse: the rules the runtime enforces dynamically
// (access outside phases, guaranteed strict-mode write conflicts), plus
// hazards it cannot see at all (stale same-phase reads, node-level
// aliases leaking into VP code, discarded run errors, overlapping VP
// write sets, host state mutated from VP code, block-transfer slices
// escaping their phase).
//
// Usage:
//
//	ppmvet [-json] [-rules list] [-timing] [-baseline file] packages...
//
//	ppmvet ./...                    # check every package
//	ppmvet -json ./internal/apps/...
//	ppmvet -rules phasebound,staleread ./examples/...
//	ppmvet -timing ./...            # report per-rule wall-clock cost
//	ppmvet -baseline VET_BASELINE.json ./...  # only NEW findings fail
//
// A baseline is a JSON findings file (the -json output of an earlier
// run, checked into the repository): findings recorded there are
// suppressed, so the run fails only on findings the baseline does not
// know. Baseline entries match on file, rule, and message — not line —
// so unrelated edits to a file do not churn the gate.
//
// Findings print as file:line:col: rule: message and make the exit
// status nonzero. A finding can be suppressed with a //ppmvet:ignore
// [rule...] comment on (or immediately above) the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ppm/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	ruleList := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	listRules := flag.Bool("list", false, "list the available rules and exit")
	timing := flag.Bool("timing", false, "report per-rule wall-clock cost on stderr")
	baseline := flag.String("baseline", "", "JSON findings file; findings recorded there do not fail the run")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ppmvet [-json] [-rules list] [-timing] packages...")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, a := range analysis.Rules() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	rules := analysis.Rules()
	if *ruleList != "" {
		rules = rules[:0]
		for _, name := range strings.Split(*ruleList, ",") {
			a := analysis.RuleByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ppmvet: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			rules = append(rules, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmvet:", err)
		os.Exit(2)
	}
	diags, timings, err := analysis.RunTimed(pkgs, rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmvet:", err)
		os.Exit(2)
	}
	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "ppmvet: %-14s %v\n", t.Rule, t.Elapsed.Round(time.Microsecond))
		}
	}
	if *baseline != "" {
		known, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppmvet:", err)
			os.Exit(2)
		}
		kept := diags[:0]
		suppressed := 0
		for _, d := range diags {
			if known[baselineKey(d.Pos.Filename, d.Rule, d.Message)] {
				suppressed++
				continue
			}
			kept = append(kept, d)
		}
		diags = kept
		if suppressed > 0 && !*jsonOut {
			fmt.Printf("%d known finding%s suppressed by %s\n", suppressed, plural(suppressed), *baseline)
		}
	}

	if *jsonOut {
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "ppmvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Printf("%d problem%s\n", len(diags), plural(len(diags)))
		}
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("ok\t%d packages checked\n", len(pkgs))
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// finding is the JSON shape of one diagnostic, shared by -json output
// and -baseline files.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func baselineKey(file, rule, message string) string {
	return file + "\x00" + rule + "\x00" + message
}

// loadBaseline reads a -json findings file into a suppression set.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fs []finding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	known := make(map[string]bool, len(fs))
	for _, f := range fs {
		known[baselineKey(f.File, f.Rule, f.Message)] = true
	}
	return known, nil
}
