// Benchmarks regenerating the paper's evaluation artifacts.
//
// One benchmark per table and figure:
//
//   - BenchmarkFigure1CG        — Fig. 1, CG solver, PPM vs MPI per node count
//   - BenchmarkFigure2Colloc    — Fig. 2, collocation matrix generation
//   - BenchmarkFigure3BarnesHut — Fig. 3, Barnes-Hut simulation
//   - BenchmarkTable1CodeSize   — Table 1, code-size measurement
//   - BenchmarkSection5Search   — the Section 5 worked example
//
// plus ablation benchmarks for each optimization DESIGN.md calls out
// (bundling, overlap, read cache, dynamic VP scheduling, SmartMap, and
// the closing manycore claim).
//
// Every figure benchmark reports the modeled machine time as
// "sim-ms/run" next to the host ns/op; the figures' shapes live in the
// sim metric, and cmd/ppm-figures prints the full sweep tables.
package ppm_test

import (
	"fmt"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/search"
	"ppm/internal/bench"
	"ppm/internal/core"
	"ppm/internal/machine"
)

// benchNodes are the cluster sizes exercised per figure benchmark (the
// full 1..64 sweep is cmd/ppm-figures' job; benchmarks keep a
// representative low/mid/high trio).
var benchNodes = []int{1, 4, 16}

func reportSim(b *testing.B, simSeconds float64) {
	b.ReportMetric(simSeconds*1e3, "sim-ms/run")
}

func benchParams() (cg.Params, colloc.Params, nbody.Params) {
	cgP := cg.Params{NX: 16, NY: 16, NZ: 32, MaxIter: 10, Tol: 0}
	colP := colloc.Params{Levels: 6, M0: 8, Delta: 3}
	bhP := nbody.Params{N: 1500, Steps: 1, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42}
	return cgP, colP, bhP
}

func BenchmarkFigure1CG(b *testing.B) {
	prm, _, _ := benchParams()
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("ppm/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunMPI(cg.MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

func BenchmarkFigure2Colloc(b *testing.B) {
	_, prm, _ := benchParams()
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("ppm/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := colloc.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := colloc.RunMPI(colloc.MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

func BenchmarkFigure3BarnesHut(b *testing.B) {
	_, _, prm := benchParams()
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("ppm/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := nbody.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := nbody.RunMPI(nbody.MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

func BenchmarkTable1CodeSize(b *testing.B) {
	root, err := bench.RepoRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1CodeSizes(root)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkSection5Search(b *testing.B) {
	prm := search.Params{N: 1 << 18, K: 1 << 12, Seed: 42}
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := search.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
	}
}

// --- Ablations: the §3.3 runtime-design claims, each isolated. ---

func ablationOpt(nodes int, mutate func(*core.Options)) core.Options {
	o := core.Options{Nodes: nodes, Machine: machine.Franklin()}
	if mutate != nil {
		mutate(&o)
	}
	return o
}

// ablate runs the collocation workload (random fine-grained reads) under
// the given option mutation and reports the simulated time.
func ablate(b *testing.B, mutate func(*core.Options)) {
	_, prm, _ := benchParams()
	var sim float64
	for i := 0; i < b.N; i++ {
		_, rep, err := colloc.RunPPM(ablationOpt(8, mutate), prm)
		if err != nil {
			b.Fatal(err)
		}
		sim = rep.Makespan().Seconds()
	}
	reportSim(b, sim)
}

func BenchmarkAblationBundling(b *testing.B) {
	b.Run("bundled", func(b *testing.B) { ablate(b, nil) })
	b.Run("per-element", func(b *testing.B) {
		ablate(b, func(o *core.Options) { o.NoBundling = true })
	})
}

func BenchmarkAblationOverlap(b *testing.B) {
	b.Run("overlapped", func(b *testing.B) { ablate(b, nil) })
	b.Run("serialized", func(b *testing.B) {
		ablate(b, func(o *core.Options) { o.NoOverlap = true })
	})
}

// BenchmarkAblationReadCache uses the CG workload: stencil halo elements
// are read by many rows, so the node-level cache collapses the remote
// volume. Both the simulated time and the remote traffic are reported.
func BenchmarkAblationReadCache(b *testing.B) {
	prm, _, _ := benchParams()
	for _, off := range []bool{false, true} {
		name := "cached"
		if off {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			var sim, mb float64
			for i := 0; i < b.N; i++ {
				o := ablationOpt(8, nil)
				o.NoReadCache = off
				_, rep, err := cg.RunPPM(o, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
				mb = float64(rep.Totals.BytesOut) / 1e6
			}
			reportSim(b, sim)
			b.ReportMetric(mb, "remote-MB/run")
		})
	}
}

func BenchmarkAblationSchedule(b *testing.B) {
	b.Run("dynamic", func(b *testing.B) { ablate(b, nil) })
	b.Run("static", func(b *testing.B) {
		ablate(b, func(o *core.Options) { o.StaticSchedule = true })
	})
}

// BenchmarkAblationSmartMap probes the paper's footnote 1: intra-node MPI
// messaging overhead with and without a SmartMap-style single-copy path.
func BenchmarkAblationSmartMap(b *testing.B) {
	prm, _, _ := benchParams()
	for _, smart := range []bool{false, true} {
		name := "plain"
		if smart {
			name = "smartmap"
		}
		b.Run(name, func(b *testing.B) {
			m := machine.Franklin()
			m.SmartMap = smart
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunMPI(cg.MPIOptions{Nodes: 4, Machine: m}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

// BenchmarkAblationManycore probes the paper's closing claim: the benefit
// of PPM's node-level sharing should grow as cores per node increase far
// beyond Franklin's 4.
func BenchmarkAblationManycore(b *testing.B) {
	prm, _, _ := benchParams()
	for _, cores := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("ppm/cores=%d", cores), func(b *testing.B) {
			m := machine.Manycore(cores)
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunPPM(core.Options{Nodes: 4, Machine: m}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/cores=%d", cores), func(b *testing.B) {
			m := machine.Manycore(cores)
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunMPI(cg.MPIOptions{Nodes: 4, Machine: m}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

// BenchmarkSupplementaryJacobi is the structured counterpoint (DESIGN.md
// experiment S1): a regular stencil where message passing is on its home
// turf and PPM must merely stay within a small factor.
func BenchmarkSupplementaryJacobi(b *testing.B) {
	prm := jacobi.Params{NX: 16, NY: 16, NZ: 32, Sweeps: 8}
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("ppm/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := jacobi.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := jacobi.RunMPI(jacobi.MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

// --- Host micro-benchmarks of the runtime machinery itself. ---

func BenchmarkRuntimePhaseRoundTrip(b *testing.B) {
	// Host cost of one Do with one phase across 16 VPs on one node.
	rep, err := core.Run(core.Options{Nodes: 1, Machine: machine.Generic()}, func(rt *core.Runtime) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Do(16, func(vp *core.VP) {
				vp.NodePhase(func() {})
			})
		}
	})
	_ = rep
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntimeSharedReadLocal(b *testing.B) {
	_, err := core.Run(core.Options{Nodes: 1, Machine: machine.Generic()}, func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "bench", 1024)
		b.ResetTimer()
		rt.Do(1, func(vp *core.VP) {
			vp.GlobalPhase(func() {
				for i := 0; i < b.N; i++ {
					g.Read(vp, i&1023)
				}
			})
		})
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntimeSharedWrite(b *testing.B) {
	_, err := core.Run(core.Options{Nodes: 1, Machine: machine.Generic()}, func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "bench", 1024)
		b.ResetTimer()
		rt.Do(1, func(vp *core.VP) {
			vp.GlobalPhase(func() {
				for i := 0; i < b.N; i++ {
					g.Write(vp, i&1023, 1)
				}
			})
		})
	})
	if err != nil {
		b.Fatal(err)
	}
}
