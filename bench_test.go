// Benchmarks regenerating the paper's evaluation artifacts.
//
// One benchmark per table and figure:
//
//   - BenchmarkFigure1CG        — Fig. 1, CG solver, PPM vs MPI per node count
//   - BenchmarkFigure2Colloc    — Fig. 2, collocation matrix generation
//   - BenchmarkFigure3BarnesHut — Fig. 3, Barnes-Hut simulation
//   - BenchmarkTable1CodeSize   — Table 1, code-size measurement
//   - BenchmarkSection5Search   — the Section 5 worked example
//
// plus ablation benchmarks for each optimization DESIGN.md calls out
// (bundling, overlap, read cache, dynamic VP scheduling, SmartMap, and
// the closing manycore claim).
//
// Every figure benchmark reports the modeled machine time as
// "sim-ms/run" next to the host ns/op; the figures' shapes live in the
// sim metric, and cmd/ppm-figures prints the full sweep tables.
package ppm_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/search"
	"ppm/internal/bench"
	"ppm/internal/core"
	"ppm/internal/machine"
	"ppm/internal/sparse"
)

// benchNodes are the cluster sizes exercised per figure benchmark (the
// full 1..64 sweep is cmd/ppm-figures' job; benchmarks keep a
// representative low/mid/high trio).
var benchNodes = []int{1, 4, 16}

func reportSim(b *testing.B, simSeconds float64) {
	b.ReportMetric(simSeconds*1e3, "sim-ms/run")
}

func benchParams() (cg.Params, colloc.Params, nbody.Params) {
	cgP := cg.Params{NX: 16, NY: 16, NZ: 32, MaxIter: 10, Tol: 0}
	colP := colloc.Params{Levels: 6, M0: 8, Delta: 3}
	bhP := nbody.Params{N: 1500, Steps: 1, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42}
	return cgP, colP, bhP
}

func BenchmarkFigure1CG(b *testing.B) {
	prm, _, _ := benchParams()
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("ppm/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunMPI(cg.MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

func BenchmarkFigure2Colloc(b *testing.B) {
	_, prm, _ := benchParams()
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("ppm/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := colloc.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := colloc.RunMPI(colloc.MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

func BenchmarkFigure3BarnesHut(b *testing.B) {
	_, _, prm := benchParams()
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("ppm/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := nbody.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := nbody.RunMPI(nbody.MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

func BenchmarkTable1CodeSize(b *testing.B) {
	root, err := bench.RepoRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1CodeSizes(root)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkSection5Search(b *testing.B) {
	prm := search.Params{N: 1 << 18, K: 1 << 12, Seed: 42}
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := search.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
	}
}

// --- Ablations: the §3.3 runtime-design claims, each isolated. ---

func ablationOpt(nodes int, mutate func(*core.Options)) core.Options {
	o := core.Options{Nodes: nodes, Machine: machine.Franklin()}
	if mutate != nil {
		mutate(&o)
	}
	return o
}

// ablate runs the collocation workload (random fine-grained reads) under
// the given option mutation and reports the simulated time.
func ablate(b *testing.B, mutate func(*core.Options)) {
	_, prm, _ := benchParams()
	var sim float64
	for i := 0; i < b.N; i++ {
		_, rep, err := colloc.RunPPM(ablationOpt(8, mutate), prm)
		if err != nil {
			b.Fatal(err)
		}
		sim = rep.Makespan().Seconds()
	}
	reportSim(b, sim)
}

func BenchmarkAblationBundling(b *testing.B) {
	b.Run("bundled", func(b *testing.B) { ablate(b, nil) })
	b.Run("per-element", func(b *testing.B) {
		ablate(b, func(o *core.Options) { o.NoBundling = true })
	})
}

func BenchmarkAblationOverlap(b *testing.B) {
	b.Run("overlapped", func(b *testing.B) { ablate(b, nil) })
	b.Run("serialized", func(b *testing.B) {
		ablate(b, func(o *core.Options) { o.NoOverlap = true })
	})
}

// BenchmarkAblationReadCache uses the CG workload: stencil halo elements
// are read by many rows, so the node-level cache collapses the remote
// volume. Both the simulated time and the remote traffic are reported.
func BenchmarkAblationReadCache(b *testing.B) {
	prm, _, _ := benchParams()
	for _, off := range []bool{false, true} {
		name := "cached"
		if off {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			var sim, mb float64
			for i := 0; i < b.N; i++ {
				o := ablationOpt(8, nil)
				o.NoReadCache = off
				_, rep, err := cg.RunPPM(o, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
				mb = float64(rep.Totals.BytesOut) / 1e6
			}
			reportSim(b, sim)
			b.ReportMetric(mb, "remote-MB/run")
		})
	}
}

func BenchmarkAblationSchedule(b *testing.B) {
	b.Run("dynamic", func(b *testing.B) { ablate(b, nil) })
	b.Run("static", func(b *testing.B) {
		ablate(b, func(o *core.Options) { o.StaticSchedule = true })
	})
}

// BenchmarkAblationSmartMap probes the paper's footnote 1: intra-node MPI
// messaging overhead with and without a SmartMap-style single-copy path.
func BenchmarkAblationSmartMap(b *testing.B) {
	prm, _, _ := benchParams()
	for _, smart := range []bool{false, true} {
		name := "plain"
		if smart {
			name = "smartmap"
		}
		b.Run(name, func(b *testing.B) {
			m := machine.Franklin()
			m.SmartMap = smart
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunMPI(cg.MPIOptions{Nodes: 4, Machine: m}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

// BenchmarkAblationManycore probes the paper's closing claim: the benefit
// of PPM's node-level sharing should grow as cores per node increase far
// beyond Franklin's 4.
func BenchmarkAblationManycore(b *testing.B) {
	prm, _, _ := benchParams()
	for _, cores := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("ppm/cores=%d", cores), func(b *testing.B) {
			m := machine.Manycore(cores)
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunPPM(core.Options{Nodes: 4, Machine: m}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/cores=%d", cores), func(b *testing.B) {
			m := machine.Manycore(cores)
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := cg.RunMPI(cg.MPIOptions{Nodes: 4, Machine: m}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

// BenchmarkSupplementaryJacobi is the structured counterpoint (DESIGN.md
// experiment S1): a regular stencil where message passing is on its home
// turf and PPM must merely stay within a small factor.
func BenchmarkSupplementaryJacobi(b *testing.B) {
	prm := jacobi.Params{NX: 16, NY: 16, NZ: 32, Sweeps: 8}
	for _, nodes := range benchNodes {
		b.Run(fmt.Sprintf("ppm/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := jacobi.RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan().Seconds()
			}
			reportSim(b, sim)
		})
		b.Run(fmt.Sprintf("mpi/nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rep, err := jacobi.RunMPI(jacobi.MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, prm)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.Makespan.Seconds()
			}
			reportSim(b, sim)
		})
	}
}

// --- Host micro-benchmarks of the runtime machinery itself. ---

func BenchmarkRuntimePhaseRoundTrip(b *testing.B) {
	// Host cost of one Do with one phase across 16 VPs on one node.
	rep, err := core.Run(core.Options{Nodes: 1, Machine: machine.Generic()}, func(rt *core.Runtime) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Do(16, func(vp *core.VP) {
				vp.NodePhase(func() {})
			})
		}
	})
	_ = rep
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntimeSharedReadLocal(b *testing.B) {
	_, err := core.Run(core.Options{Nodes: 1, Machine: machine.Generic()}, func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "bench", 1024)
		b.ResetTimer()
		rt.Do(1, func(vp *core.VP) {
			vp.GlobalPhase(func() {
				for i := 0; i < b.N; i++ {
					g.Read(vp, i&1023)
				}
			})
		})
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntimeSharedWrite(b *testing.B) {
	_, err := core.Run(core.Options{Nodes: 1, Machine: machine.Generic()}, func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "bench", 1024)
		b.ResetTimer()
		rt.Do(1, func(vp *core.VP) {
			vp.GlobalPhase(func() {
				for i := 0; i < b.N; i++ {
					g.Write(vp, i&1023, 1)
				}
			})
		})
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- Hot-path benchmarks: block accessors vs element-wise loops, and
// the commit-machinery data structures old vs new. A checked-in summary
// lives in BENCH_hotpath.json; regenerate it with
//
//	BENCH_HOTPATH=1 go test -run TestHotpathBenchArtifact .

// hotElems is the phase payload of the hot-path cycles: 8 rows of 1024
// elements, written/read through one Do+phase+commit per op.
const hotElems = 8192

func benchWriteCycle(b *testing.B, block bool) {
	_, err := core.Run(core.Options{Nodes: 1, Machine: machine.Generic()}, func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "hot.w", hotElems)
		row := make([]float64, 1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Do(1, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					if block {
						for r := 0; r < hotElems/1024; r++ {
							g.WriteBlock(vp, r*1024, row)
						}
					} else {
						for r := 0; r < hotElems/1024; r++ {
							for j := 0; j < 1024; j++ {
								g.Write(vp, r*1024+j, row[j])
							}
						}
					}
				})
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func benchReadCycle(b *testing.B, block bool) {
	_, err := core.Run(core.Options{Nodes: 1, Machine: machine.Generic()}, func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "hot.r", hotElems)
		row := make([]float64, 1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Do(1, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					if block {
						for r := 0; r < hotElems/1024; r++ {
							g.ReadBlock(vp, r*1024, (r+1)*1024, row)
						}
					} else {
						for r := 0; r < hotElems/1024; r++ {
							for j := 0; j < 1024; j++ {
								row[j] = g.Read(vp, r*1024+j)
							}
						}
					}
				})
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkHotpathWriteCycle(b *testing.B) {
	b.Run("element", func(b *testing.B) { benchWriteCycle(b, false) })
	b.Run("block", func(b *testing.B) { benchWriteCycle(b, true) })
}

func BenchmarkHotpathReadCycle(b *testing.B) {
	b.Run("element", func(b *testing.B) { benchReadCycle(b, false) })
	b.Run("block", func(b *testing.B) { benchReadCycle(b, true) })
}

// benchCGIteration is one Figure-1 CG matrix-vector phase (the solver's
// hot loop) at 4 nodes: local stencil rows gathered from the shared
// search direction, either an element at a time or through the stencil's
// run-length column structure with ReadBlock.
func benchCGIteration(b *testing.B, block bool) {
	prm, _, _ := benchParams()
	_, err := core.Run(core.Options{Nodes: 4, Machine: machine.Franklin()}, func(rt *core.Runtime) {
		n := prm.N()
		p := core.AllocGlobal[float64](rt, "hot.p", n)
		lo, hi := p.OwnerRange(rt)
		nLocal := hi - lo
		w := core.AllocNode[float64](rt, "hot.spmv", n/rt.NodeCount()+1)
		a := sparse.Stencil27Rows(prm.NX, prm.NY, prm.NZ, lo, hi)
		runPtr, runs, maxRun := a.ColRuns()
		pl := p.Local(rt)
		for i := range pl {
			pl[i] = float64(lo+i) * 1e-3
		}
		k := rt.CoresPerNode() * 4
		rt.Barrier()
		if rt.NodeID() == 0 {
			b.ReportAllocs()
			b.ResetTimer()
		}
		for it := 0; it < b.N; it++ {
			rt.Do(k, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					vlo, vhi := core.ChunkRange(nLocal, k, vp.NodeRank())
					var buf []float64
					if block {
						buf = make([]float64, maxRun)
					}
					for row := vlo; row < vhi; row++ {
						var s float64
						kk := a.RowPtr[row]
						if block {
							for _, cr := range runs[runPtr[row]:runPtr[row+1]] {
								p.ReadBlock(vp, cr.Col, cr.Col+cr.N, buf)
								for j := 0; j < cr.N; j++ {
									s += a.Val[kk] * buf[j]
									kk++
								}
							}
						} else {
							for _, c := range a.Col[a.RowPtr[row]:a.RowPtr[row+1]] {
								s += a.Val[kk] * p.Read(vp, c)
								kk++
							}
						}
						w.Write(vp, row, s)
					}
				})
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkHotpathCGIteration(b *testing.B) {
	b.Run("element", func(b *testing.B) { benchCGIteration(b, false) })
	b.Run("block", func(b *testing.B) { benchCGIteration(b, true) })
}

// benchReadTracking contrasts the two remote-read dedup structures: the
// seed's node-level map guarded by one mutex (every VP read locks it)
// against the current per-VP interval runs (no sharing until commit).
// Each parallel worker records a contiguous index stream, which is what
// a VP's chunk of a gather looks like.
func benchReadTracking(b *testing.B, locked bool) {
	b.ReportAllocs()
	if locked {
		type rk struct{ arr, idx int }
		var mu sync.Mutex
		seen := make(map[rk]struct{}, 1<<16)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := rk{arr: 0, idx: i & 0xFFFF}
				mu.Lock()
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
				}
				mu.Unlock()
				i++
			}
		})
	} else {
		b.RunParallel(func(pb *testing.PB) {
			type run struct{ lo, hi int }
			var runs []run
			i := 0
			for pb.Next() {
				if n := len(runs); n > 0 && runs[n-1].hi == i {
					runs[n-1].hi = i + 1
				} else {
					if len(runs) == 1<<12 {
						runs = runs[:0] // phase commit truncates in place
					}
					runs = append(runs, run{lo: i, hi: i + 1})
				}
				i++
			}
		})
	}
}

func BenchmarkHotpathReadTracking(b *testing.B) {
	b.Run("locked-map", func(b *testing.B) { benchReadTracking(b, true) })
	b.Run("per-vp-runs", func(b *testing.B) { benchReadTracking(b, false) })
}

// benchStaging replays the two write-staging schemes outside the runtime
// so their allocation behavior is isolated. The seed staged one record
// per written element and dropped the destination slice after every
// apply (stage = nil), so each phase re-grew it element by element; the
// current scheme stages one run-length record per contiguous run, keeps
// values in a reused arena, and truncates stage slices in place.
func benchStaging(b *testing.B, legacy bool) {
	base := make([]float64, hotElems)
	row := make([]float64, hotElems)
	b.ReportAllocs()
	b.ResetTimer()
	if legacy {
		type rec struct {
			idx    int
			val    float64
			add    bool
			writer int64
		}
		var recs, stage []rec
		for i := 0; i < b.N; i++ {
			recs = recs[:0]
			for j := 0; j < hotElems; j++ {
				recs = append(recs, rec{idx: j, val: row[j], writer: 7})
			}
			stage = nil
			stage = append(stage, recs...)
			for _, r := range stage {
				if r.add {
					base[r.idx] += r.val
				} else {
					base[r.idx] = r.val
				}
			}
		}
	} else {
		type rec struct {
			lo, n, off int
			add        bool
			writer     int64
		}
		var arena []float64
		var recs, stage []rec
		for i := 0; i < b.N; i++ {
			recs, arena = recs[:0], arena[:0]
			off := len(arena)
			arena = append(arena, row...)
			recs = append(recs, rec{lo: 0, n: hotElems, off: off, writer: 7})
			stage = stage[:0]
			stage = append(stage, recs...)
			for _, r := range stage {
				copy(base[r.lo:r.lo+r.n], arena[r.off:r.off+r.n])
			}
		}
	}
}

func BenchmarkHotpathStaging(b *testing.B) {
	b.Run("seed-per-element", func(b *testing.B) { benchStaging(b, true) })
	b.Run("arena-runs", func(b *testing.B) { benchStaging(b, false) })
}

// TestHotpathBenchArtifact regenerates BENCH_hotpath.json, the checked-in
// snapshot of the hot-path host costs. Gated behind an environment
// variable so routine test runs stay fast.
func TestHotpathBenchArtifact(t *testing.T) {
	if os.Getenv("BENCH_HOTPATH") == "" {
		t.Skip("set BENCH_HOTPATH=1 to regenerate BENCH_hotpath.json")
	}
	type entry struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	run := func(name string, f func(*testing.B)) entry {
		r := testing.Benchmark(f)
		return entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	doc := struct {
		Note    string  `json:"note"`
		Go      string  `json:"go"`
		Results []entry `json:"results"`
	}{
		Note: "Host costs of the shared-access hot path. *_cycle ops move 8192 elements " +
			"through one Do+phase+commit; figure1_cg_iteration ops are one 4-node SpMV phase " +
			"of the Figure 1 CG solve; write_staging ops replay the seed's per-element staging " +
			"against the current arena/run scheme; read_tracking ops record one remote read " +
			"per worker under the seed's locked map vs per-VP runs.",
		Go: runtime.Version(),
		Results: []entry{
			run("global_write_cycle/element", func(b *testing.B) { benchWriteCycle(b, false) }),
			run("global_write_cycle/block", func(b *testing.B) { benchWriteCycle(b, true) }),
			run("global_read_cycle/element", func(b *testing.B) { benchReadCycle(b, false) }),
			run("global_read_cycle/block", func(b *testing.B) { benchReadCycle(b, true) }),
			run("write_staging/seed-per-element", func(b *testing.B) { benchStaging(b, true) }),
			run("write_staging/arena-runs", func(b *testing.B) { benchStaging(b, false) }),
			run("read_tracking/locked-map", func(b *testing.B) { benchReadTracking(b, true) }),
			run("read_tracking/per-vp-runs", func(b *testing.B) { benchReadTracking(b, false) }),
			run("figure1_cg_iteration/element", func(b *testing.B) { benchCGIteration(b, false) }),
			run("figure1_cg_iteration/block", func(b *testing.B) { benchCGIteration(b, true) }),
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_hotpath.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.Results {
		t.Logf("%-36s %12.1f ns/op %8d allocs/op %10d B/op", e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
}
