// Plan-cache equivalence over the full figure-app matrix: every app run
// with the steady-state phase-plan cache enabled must be bit-identical —
// outputs and modeled per-node counters — to the same run with the
// cache disabled (core.Options.NoPlanCache / PPM_PLAN_CACHE=0). The
// cache memoizes host-side work only; any observable difference is a
// bug in it.
package ppm_test

import (
	"math"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/scatter"
	"ppm/internal/apps/search"
	"ppm/internal/core"
	"ppm/internal/machine"
)

func planOpt(nodes int, noCache bool) core.Options {
	return core.Options{Nodes: nodes, CoresPerNode: 2, Machine: machine.Generic(), NoPlanCache: noCache}
}

func samePlanF64(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v (%#x), want %v (%#x)", label, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// samePlanStats compares per-node counters with the PlanCache block
// zeroed (it is the memoization bookkeeping under test) and the
// wall-clock-measured phase times zeroed (host timing jitter).
func samePlanStats(t *testing.T, got, want []core.NodeStats) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("per-node stats: %d nodes, want %d", len(got), len(want))
	}
	for n := range want {
		g, w := got[n], want[n]
		g.PlanCache, w.PlanCache = core.PlanCacheStats{}, core.PlanCacheStats{}
		g.PhaseComputeTime, g.PhaseCommTime, g.PhaseApplyTime = 0, 0, 0
		w.PhaseComputeTime, w.PhaseCommTime, w.PhaseApplyTime = 0, 0, 0
		if g != w {
			t.Errorf("node %d counters diverge:\n cache-on  %+v\n cache-off %+v", n, g, w)
		}
	}
}

func TestPlanCacheFigureAppEquivalence(t *testing.T) {
	t.Setenv("PPM_PLAN_CACHE", "") // let the Options field decide
	t.Run("cg", func(t *testing.T) {
		prm := cg.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 6}
		on, onRep, err := cg.RunPPM(planOpt(3, false), prm)
		if err != nil {
			t.Fatal(err)
		}
		off, offRep, err := cg.RunPPM(planOpt(3, true), prm)
		if err != nil {
			t.Fatal(err)
		}
		if on.Iters != off.Iters || math.Float64bits(on.Residual) != math.Float64bits(off.Residual) {
			t.Fatalf("cg diverges: on iters=%d res=%v, off iters=%d res=%v",
				on.Iters, on.Residual, off.Iters, off.Residual)
		}
		samePlanF64(t, "x", on.X, off.X)
		samePlanStats(t, onRep.PerNode, offRep.PerNode)
		if onRep.Totals.PlanCache.Hits == 0 {
			t.Error("cg: cache-on run recorded no plan hits — the cache never engaged")
		}
	})
	t.Run("jacobi", func(t *testing.T) {
		prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 5}
		on, onRep, err := jacobi.RunPPM(planOpt(2, false), prm)
		if err != nil {
			t.Fatal(err)
		}
		off, offRep, err := jacobi.RunPPM(planOpt(2, true), prm)
		if err != nil {
			t.Fatal(err)
		}
		samePlanF64(t, "u", on, off)
		samePlanStats(t, onRep.PerNode, offRep.PerNode)
		if onRep.Totals.PlanCache.Hits == 0 {
			t.Error("jacobi: cache-on run recorded no plan hits — the cache never engaged")
		}
	})
	t.Run("colloc", func(t *testing.T) {
		prm := colloc.Params{Levels: 4, M0: 6, Delta: 2.5}
		on, onRep, err := colloc.RunPPM(planOpt(3, false), prm)
		if err != nil {
			t.Fatal(err)
		}
		off, offRep, err := colloc.RunPPM(planOpt(3, true), prm)
		if err != nil {
			t.Fatal(err)
		}
		if on.N != off.N {
			t.Fatalf("colloc N: on %d, off %d", on.N, off.N)
		}
		for i := range off.Rows {
			if len(on.Rows[i]) != len(off.Rows[i]) {
				t.Fatalf("row %d: %d entries, want %d", i, len(on.Rows[i]), len(off.Rows[i]))
			}
			for j, e := range off.Rows[i] {
				g := on.Rows[i][j]
				if g.Col != e.Col || math.Float64bits(g.Val) != math.Float64bits(e.Val) {
					t.Fatalf("entry (%d,%d) = (%d,%v), want (%d,%v)", i, j, g.Col, g.Val, e.Col, e.Val)
				}
			}
		}
		samePlanStats(t, onRep.PerNode, offRep.PerNode)
	})
	t.Run("nbody", func(t *testing.T) {
		prm := nbody.Params{N: 64, Steps: 2, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 7}
		on, onRep, err := nbody.RunPPM(planOpt(2, false), prm)
		if err != nil {
			t.Fatal(err)
		}
		off, offRep, err := nbody.RunPPM(planOpt(2, true), prm)
		if err != nil {
			t.Fatal(err)
		}
		samePlanF64(t, "px", on.PX, off.PX)
		samePlanF64(t, "py", on.PY, off.PY)
		samePlanF64(t, "pz", on.PZ, off.PZ)
		samePlanF64(t, "vx", on.VX, off.VX)
		samePlanF64(t, "vy", on.VY, off.VY)
		samePlanF64(t, "vz", on.VZ, off.VZ)
		samePlanF64(t, "m", on.M, off.M)
		samePlanStats(t, onRep.PerNode, offRep.PerNode)
	})
	t.Run("search", func(t *testing.T) {
		prm := search.Params{N: 4096, K: 64, Seed: 7}
		on, onRep, err := search.RunPPM(planOpt(2, false), prm)
		if err != nil {
			t.Fatal(err)
		}
		off, offRep, err := search.RunPPM(planOpt(2, true), prm)
		if err != nil {
			t.Fatal(err)
		}
		for n := range off {
			for i := range off[n] {
				if on[n][i] != off[n][i] {
					t.Fatalf("node %d rank[%d] = %d, want %d", n, i, on[n][i], off[n][i])
				}
			}
		}
		samePlanStats(t, onRep.PerNode, offRep.PerNode)
	})
	t.Run("scatter", func(t *testing.T) {
		on, onRep, err := scatter.RunPPM(planOpt(3, false), scatter.Params{})
		if err != nil {
			t.Fatal(err)
		}
		off, offRep, err := scatter.RunPPM(planOpt(3, true), scatter.Params{})
		if err != nil {
			t.Fatal(err)
		}
		for n := range off {
			samePlanF64(t, "partition", on[n], off[n])
		}
		samePlanStats(t, onRep.PerNode, offRep.PerNode)
		if onRep.Totals.PlanCache.Hits == 0 {
			t.Error("scatter: cache-on run recorded no plan hits — the cache never engaged")
		}
	})
}
